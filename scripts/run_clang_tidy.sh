#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the library sources.
#
# Usage: scripts/run_clang_tidy.sh [--analyzer] [build-dir]
#
# Generates compile_commands.json in a dedicated build tree (default:
# build-tidy) so the main build is untouched, then tidies every .cpp
# under src/. Uses run-clang-tidy for parallelism when available, plain
# clang-tidy otherwise. Exits non-zero on any diagnostic that
# .clang-tidy promotes to an error.
#
# --analyzer restricts the run to the Clang Static Analyzer group
# (clang-analyzer-*, minus the suppressions documented in .clang-tidy):
# the path-sensitive checks are ~10x slower than the syntactic ones, so
# the CI clang job runs them as their own leg instead of serializing
# them behind the fast profile.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=full
if [[ "${1:-}" == "--analyzer" ]]; then
  MODE=analyzer
  shift
fi
BUILD_DIR="${1:-build-tidy}"

# Restrict to the analyzer group while keeping .clang-tidy's documented
# suppressions (a -checks= filter composes with the config file's list).
TIDY_ARGS=()
if [[ "$MODE" == analyzer ]]; then
  TIDY_ARGS+=("-checks=-*,clang-analyzer-*,-clang-analyzer-optin.performance.Padding,-clang-analyzer-optin.cplusplus.VirtualCall")
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH." >&2
  echo "Install LLVM/Clang (e.g. 'apt install clang-tidy') and re-run;" >&2
  echo "the CI clang-tidy job runs this script on every push." >&2
  exit 1
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DLBMIB_BUILD_BENCH=OFF >/dev/null

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "clang-tidy [$MODE] over ${#SOURCES[@]} files (database: $BUILD_DIR)"

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

STATUS=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$BUILD_DIR" "${TIDY_ARGS[@]}" \
    "${SOURCES[@]}" 2>&1 | tee "$LOG" || STATUS=$?
else
  # Sweep every file even after one fails, so a single run reports the
  # full finding set.
  for src in "${SOURCES[@]}"; do
    clang-tidy -quiet -p "$BUILD_DIR" "${TIDY_ARGS[@]}" "$src" 2>&1 \
      | tee -a "$LOG" || STATUS=$?
  done
fi

# run-clang-tidy releases differ on whether per-file failures reach the
# exit code, so gate on the log as well: every diagnostic promoted by
# WarningsAsErrors prints ": error:".
if grep -q ": error:" "$LOG"; then
  echo "clang-tidy: promoted diagnostics found (see log above)" >&2
  exit 1
fi
exit "$STATUS"
