#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the library sources.
#
# Usage: scripts/run_clang_tidy.sh [--analyzer | --lbmib PLUGIN.so] [build-dir]
#
# Generates compile_commands.json in a dedicated build tree (default:
# build-tidy) so the main build is untouched, then tidies every .cpp
# under src/. Uses run-clang-tidy for parallelism when available, plain
# clang-tidy otherwise. Exits non-zero on any diagnostic that
# .clang-tidy promotes to an error.
#
# --analyzer restricts the run to the Clang Static Analyzer group
# (clang-analyzer-*, minus the suppressions documented in .clang-tidy):
# the path-sensitive checks are ~10x slower than the syntactic ones, so
# the CI clang job runs them as their own leg instead of serializing
# them behind the fast profile.
#
# --lbmib PLUGIN.so loads the lbmib-tidy plugin (tools/lint/) and runs
# ONLY its five protocol checks, all promoted to errors. The plugin must
# have been built against the same LLVM as the clang-tidy binary; set
# LLVM_DIR to the install CMake was pointed at and this script resolves
# the matching binary from it.
#
# Binary selection (first match wins):
#   $CLANG_TIDY / $RUN_CLANG_TIDY   explicit override
#   $LLVM_DIR                       <prefix>/bin/clang-tidy of that install
#   PATH                            whatever 'clang-tidy' resolves to
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=full
PLUGIN=""
case "${1:-}" in
  --analyzer)
    MODE=analyzer
    shift
    ;;
  --lbmib)
    MODE=lbmib
    PLUGIN="${2:?--lbmib needs the plugin path (liblbmib_tidy.so)}"
    shift 2
    ;;
esac
BUILD_DIR="${1:-build-tidy}"

# Resolve the clang-tidy binary. LLVM_DIR is typically
# <prefix>/lib/cmake/llvm; strip back to the prefix for bin/.
TIDY_BIN="${CLANG_TIDY:-}"
if [[ -z "$TIDY_BIN" && -n "${LLVM_DIR:-}" ]]; then
  llvm_prefix="${LLVM_DIR%%/lib/cmake*}"
  [[ -x "$llvm_prefix/bin/clang-tidy" ]] && TIDY_BIN="$llvm_prefix/bin/clang-tidy"
fi
TIDY_BIN="${TIDY_BIN:-clang-tidy}"

if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  echo "error: clang-tidy not found ('$TIDY_BIN')." >&2
  echo "Install LLVM/Clang (e.g. 'apt install clang-tidy'), or point" >&2
  echo "CLANG_TIDY or LLVM_DIR at an install; the CI clang-tidy job" >&2
  echo "runs this script on every push." >&2
  exit 1
fi

TIDY_ARGS=()
case "$MODE" in
  analyzer)
    # Restrict to the analyzer group while keeping .clang-tidy's
    # documented suppressions (a -checks= filter composes with the
    # config file's list).
    TIDY_ARGS+=("-checks=-*,clang-analyzer-*,-clang-analyzer-optin.performance.Padding,-clang-analyzer-optin.cplusplus.VirtualCall")
    ;;
  lbmib)
    if [[ ! -f "$PLUGIN" ]]; then
      echo "error: lbmib-tidy plugin not found: $PLUGIN" >&2
      echo "Build it with: cmake -B build-lint -S . -DLBMIB_BUILD_LINT=ON" >&2
      echo "               cmake --build build-lint --target lbmib_tidy" >&2
      exit 1
    fi
    TIDY_ARGS+=("--load=$PLUGIN"
                "-checks=-*,lbmib-*"
                "-warnings-as-errors=lbmib-*")
    ;;
esac

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DLBMIB_BUILD_BENCH=OFF >/dev/null

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "clang-tidy [$MODE] over ${#SOURCES[@]} files (database: $BUILD_DIR, binary: $TIDY_BIN)"

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

# run-clang-tidy parallelizes across files; use it when present and
# point it at the same binary so a CLANG_TIDY/LLVM_DIR override applies
# to both paths. The plugin mode keeps working either way because
# --load travels through as an extra clang-tidy argument.
RUN_TIDY_BIN="${RUN_CLANG_TIDY:-}"
if [[ -z "$RUN_TIDY_BIN" && -n "${LLVM_DIR:-}" ]]; then
  llvm_prefix="${LLVM_DIR%%/lib/cmake*}"
  [[ -x "$llvm_prefix/bin/run-clang-tidy" ]] && RUN_TIDY_BIN="$llvm_prefix/bin/run-clang-tidy"
fi
RUN_TIDY_BIN="${RUN_TIDY_BIN:-run-clang-tidy}"

STATUS=0
if command -v "$RUN_TIDY_BIN" >/dev/null 2>&1; then
  "$RUN_TIDY_BIN" -quiet -p "$BUILD_DIR" \
    -clang-tidy-binary "$(command -v "$TIDY_BIN")" "${TIDY_ARGS[@]}" \
    "${SOURCES[@]}" 2>&1 | tee "$LOG" || STATUS=$?
else
  # Sweep every file even after one fails, so a single run reports the
  # full finding set.
  for src in "${SOURCES[@]}"; do
    "$TIDY_BIN" -quiet -p "$BUILD_DIR" "${TIDY_ARGS[@]}" "$src" 2>&1 \
      | tee -a "$LOG" || STATUS=$?
  done
fi

# run-clang-tidy releases differ on whether per-file failures reach the
# exit code, so gate on the log as well: every diagnostic promoted by
# WarningsAsErrors prints ": error:".
if grep -q ": error:" "$LOG"; then
  echo "clang-tidy: promoted diagnostics found (see log above)" >&2
  exit 1
fi
exit "$STATUS"
