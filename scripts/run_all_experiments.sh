#!/usr/bin/env bash
# Regenerate every paper table/figure reproduction and every ablation
# study, collecting console output and CSV series under results/.
#
# Usage: scripts/run_all_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD="${1:-build}"
RESULTS="${2:-results}"

if [[ ! -d "$BUILD/bench" ]]; then
  echo "error: '$BUILD' does not look like a configured build directory" >&2
  echo "       (run: cmake -B $BUILD -G Ninja && cmake --build $BUILD)" >&2
  exit 1
fi

mkdir -p "$RESULTS"
cd "$RESULTS"

run() {
  local name="$1"
  shift
  echo "=== $name ==="
  "../$BUILD/bench/$name" "$@" | tee "$name.txt"
  echo
}

# Paper reproductions (DESIGN.md section 4 / EXPERIMENTS.md).
run table1_kernel_profile
run table2_locality
run table3_machine
run table4_numa_distance
run fig2_d3q19_model
run fig34_inputs
run fig5_openmp_scaling
run fig6_cube_mapping
run fig8_weak_scaling
run solver_comparison

# Ablation studies.
run ablation_numa_layout
run ablation_distributed
for g in ablation_kernels ablation_cube_size ablation_copy_vs_swap \
         ablation_barrier ablation_delta ablation_distribution \
         ablation_scheduling ablation_overlap; do
  echo "=== $g ==="
  "../$BUILD/bench/$g" --benchmark_min_time=0.05 | tee "$g.txt"
  echo
done

# The two paper-figure simulation scenarios (VTK + CSV output).
echo "=== examples (Figures 1 & 7) ==="
"../$BUILD/examples/oscillating_plate" 300 4 . | tail -3
"../$BUILD/examples/sheet_in_tunnel" 200 4 . | tail -3
"../$BUILD/examples/lid_driven_cavity" 2000 4 32 . | tail -3

echo
echo "All outputs written to $(pwd)"
