#!/usr/bin/env python3
"""Noise-aware perf-regression gate over two BENCH_step.json files.

Compares a fresh ``scripts/run_benchmarks.sh`` output (``--fresh``)
against the committed reference (``--baseline``), metric by metric:

  * ``solver_comparison``: per-solver ``fused_steps_per_sec`` and
    ``reference_steps_per_sec`` — the whole-step numbers that must not
    regress,
  * ``micro_collide_stream``: per-kernel MLUPS — the SIMD payoff in
    isolation.

Benchmark noise on shared CI runners is real, so the gate has two
thresholds on the fractional slowdown (1 - fresh/baseline):

  * past ``--warn`` (default 0.15): printed as a warning, exit 0,
  * past ``--fail`` (default 0.50): printed as FAIL, exit 1.

Speedups and small wobbles are reported as OK. Metrics present in only
one file are listed but never gate (the bench set is allowed to grow).
If the two files were built with different vector flags the gate
downgrades every FAIL to a warning — the numbers are not comparable.
No third-party imports.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf_regression: cannot load {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def collect_metrics(doc: dict) -> dict[str, float]:
    """Flatten the gated metrics to {label: higher-is-better value}."""
    out: dict[str, float] = {}
    for s in doc.get("solver_comparison", {}).get("solvers", []):
        name = s.get("solver", "?")
        for key in ("fused_steps_per_sec", "reference_steps_per_sec"):
            v = s.get(key)
            if isinstance(v, (int, float)) and v > 0:
                out[f"{name}.{key}"] = float(v)
    kernels = doc.get("micro_collide_stream", {}).get("kernels", {})
    for key, v in kernels.items():
        if isinstance(v, (int, float)) and v > 0:
            out[f"micro.{key}"] = float(v)
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_step.json (the reference)")
    ap.add_argument("--fresh", required=True,
                    help="BENCH_step.json from the run under test")
    ap.add_argument("--warn", type=float, default=0.15,
                    help="fractional slowdown that prints a warning")
    ap.add_argument("--fail", type=float, default=0.50,
                    help="fractional slowdown that fails the gate")
    args = ap.parse_args()
    if not 0.0 < args.warn <= args.fail:
        ap.error("need 0 < --warn <= --fail")

    base_doc, fresh_doc = load(args.baseline), load(args.fresh)
    base, fresh = collect_metrics(base_doc), collect_metrics(fresh_doc)
    if not base:
        print("check_perf_regression: baseline has no gated metrics",
              file=sys.stderr)
        sys.exit(2)

    base_flags = base_doc.get("build", {}).get("vector_flags", "")
    fresh_flags = fresh_doc.get("build", {}).get("vector_flags", "")
    comparable = base_flags == fresh_flags
    if not comparable:
        print(f"note: vector flags differ (baseline {base_flags!r} vs "
              f"fresh {fresh_flags!r}) — failures downgraded to warnings")

    failures: list[str] = []
    warnings: list[str] = []
    width = max(len(k) for k in base)
    print(f"{'metric':<{width}} {'baseline':>12} {'fresh':>12} "
          f"{'ratio':>7}  verdict")
    for key in sorted(base):
        b = base[key]
        if key not in fresh:
            print(f"{key:<{width}} {b:>12.3f} {'—':>12} {'—':>7}  "
                  "missing in fresh (not gated)")
            continue
        f = fresh[key]
        ratio = f / b
        slowdown = 1.0 - ratio
        if slowdown >= args.fail:
            verdict = f"FAIL (past --fail {args.fail:.2f})"
            failures.append(key)
        elif slowdown >= args.warn:
            verdict = f"warn (past --warn {args.warn:.2f})"
            warnings.append(key)
        else:
            verdict = "OK"
        print(f"{key:<{width}} {b:>12.3f} {f:>12.3f} {ratio:>6.2f}x  "
              f"{verdict}")
    for key in sorted(set(fresh) - set(base)):
        print(f"{key:<{width}} {'—':>12} {fresh[key]:>12.3f} {'—':>7}  "
              "new metric (not gated)")

    print()
    if failures and comparable:
        print(f"check_perf_regression: FAIL — {len(failures)} metric(s) "
              f"regressed past --fail {args.fail:.2f}: "
              f"{', '.join(failures)}")
        sys.exit(1)
    if failures:
        warnings.extend(failures)
    if warnings:
        print(f"check_perf_regression: OK with {len(warnings)} "
              f"warning(s): {', '.join(warnings)}")
    else:
        print("check_perf_regression: OK — no regressions past "
              f"--warn {args.warn:.2f}")
    sys.exit(0)


if __name__ == "__main__":
    main()
