#!/usr/bin/env bash
# One driver for every static gate in the repo, with a uniform exit code.
#
# Usage: scripts/lint.sh [--strict] [--log FILE] [--only LEG[,LEG...]]
#
# Legs, in order:
#   lbmib     the five lbmib-* protocol checks (DESIGN.md §17) — via the
#             clang-tidy plugin when one is available, else via the
#             portable engine scripts/lbmib_lint.py
#   tidy      stock clang-tidy profile (.clang-tidy) over src/
#   analyzer  Clang Static Analyzer leg of the same script
#   sync      scripts/check_sync_points.py (self-test, then the tree)
#   vec       scripts/check_vectorization.sh (hot loops stay vectorized)
#
# A leg whose tool is missing is SKIPPED with a notice and does not fail
# the run — every developer box has python3, so the protocol checks
# always execute somewhere, but clang-tidy and the analyzer only run
# where LLVM is installed. --strict turns skips into failures; CI's
# custom-lint job passes it so a silently missing tool cannot turn the
# gate green.
#
# Plugin discovery for the lbmib leg: $LBMIB_TIDY_PLUGIN if set, else
# the first build*/tools/lint/liblbmib_tidy.so in the repo. When neither
# exists (or clang-tidy itself is absent) the Python engine runs
# instead; the fixtures in tests/lint/ hold both engines to the same
# diagnostics.
#
# Exit code: 0 all legs passed (skips allowed unless --strict),
#            1 at least one leg failed or (--strict) was skipped.
set -uo pipefail

cd "$(dirname "$0")/.."

STRICT=0
LOG=""
ONLY=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --strict) STRICT=1; shift ;;
    --log) LOG="${2:?--log needs a file}"; shift 2 ;;
    --only) ONLY="${2:?--only needs a leg list}"; shift 2 ;;
    *) echo "usage: $0 [--strict] [--log FILE] [--only LEG[,LEG...]]" >&2
       exit 1 ;;
  esac
done

if [[ -n "$LOG" ]]; then
  : > "$LOG"
  exec > >(tee -a "$LOG") 2>&1
fi

FAILED=()
SKIPPED=()

wants() {
  [[ -z "$ONLY" ]] || [[ ",$ONLY," == *",$1,"* ]]
}

note() { echo "== lint.sh: $*"; }

run_leg() {
  local leg="$1"; shift
  note "[$leg] $*"
  if "$@"; then
    note "[$leg] OK"
  else
    note "[$leg] FAILED (exit $?)"
    FAILED+=("$leg")
  fi
}

skip_leg() {
  local leg="$1"; shift
  note "[$leg] SKIPPED: $*"
  SKIPPED+=("$leg")
}

# --- lbmib: the five protocol checks ---------------------------------
if wants lbmib; then
  PLUGIN="${LBMIB_TIDY_PLUGIN:-}"
  if [[ -z "$PLUGIN" ]]; then
    for so in build*/tools/lint/liblbmib_tidy.so; do
      [[ -f "$so" ]] && PLUGIN="$so" && break
    done
  fi
  if [[ -n "$PLUGIN" && -f "$PLUGIN" ]]; then
    run_leg lbmib scripts/run_clang_tidy.sh --lbmib "$PLUGIN"
  else
    note "[lbmib] no plugin found; using the portable engine"
    run_leg lbmib python3 scripts/lbmib_lint.py --self-test
    run_leg lbmib python3 scripts/lbmib_lint.py
  fi
fi

# --- tidy / analyzer: stock clang-tidy profiles ----------------------
if wants tidy; then
  if command -v "${CLANG_TIDY:-clang-tidy}" >/dev/null 2>&1; then
    run_leg tidy scripts/run_clang_tidy.sh
  else
    skip_leg tidy "clang-tidy not installed"
  fi
fi
if wants analyzer; then
  if command -v "${CLANG_TIDY:-clang-tidy}" >/dev/null 2>&1; then
    run_leg analyzer scripts/run_clang_tidy.sh --analyzer
  else
    skip_leg analyzer "clang-tidy not installed"
  fi
fi

# --- sync: blocking-primitive seam lint ------------------------------
if wants sync; then
  run_leg sync python3 scripts/check_sync_points.py --self-test
  run_leg sync python3 scripts/check_sync_points.py
fi

# --- vec: hot loops stay vectorized ----------------------------------
if wants vec; then
  if command -v "${CXX:-g++}" >/dev/null 2>&1; then
    run_leg vec scripts/check_vectorization.sh
  else
    skip_leg vec "no C++ compiler on PATH"
  fi
fi

# --- summary ---------------------------------------------------------
echo
if ((${#SKIPPED[@]})); then
  note "skipped: ${SKIPPED[*]}"
fi
if ((${#FAILED[@]})); then
  note "FAILED legs: ${FAILED[*]}"
  exit 1
fi
if ((STRICT)) && ((${#SKIPPED[@]})); then
  note "--strict: skipped legs count as failures"
  exit 1
fi
note "all legs passed"
exit 0
