#!/usr/bin/env bash
# Benchmark-regression harness for the fused collide-stream pipeline.
#
# Usage: scripts/run_benchmarks.sh [build-dir] [steps] [threads] [edge] [reps]
#
# Runs the two benches that bracket the fused-pipeline work:
#   * solver_comparison       — whole-step steps/sec and MLUPS (million
#                               lattice-node updates/sec) for all six
#                               solvers, fused vs reference pipeline (the
#                               numbers that must not regress),
#   * micro_collide_stream    — per-kernel MLUPS of the lane-block SIMD
#                               collide / stream / fused kernels vs their
#                               scalar twins (the vectorization payoff in
#                               isolation),
#   * ablation_copy_vs_swap   — the isolated kernel-9 copy-vs-swap gap
#                               (google-benchmark microbench).
#
# Assembles BENCH_step.json in the repo root from solver_comparison's and
# micro_collide_stream's machine-readable output, annotated with host
# metadata and the build's vector flags (LBMIB_VECTOR_FLAGS from the CMake
# cache), so a recorded number can always be traced to the ISA it ran on.
# CI runs this as a non-gating job; the committed BENCH_step.json is the
# reference point a reviewer diffs a fresh run against.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
STEPS="${2:-10}"
THREADS="${3:-4}"
EDGE="${4:-32}"
REPS="${5:-3}"

if [[ ! -x "$BUILD_DIR/bench/solver_comparison" ||
      ! -x "$BUILD_DIR/bench/micro_collide_stream" ]]; then
  echo "building benches in $BUILD_DIR..." >&2
  cmake -B "$BUILD_DIR" -S . -DLBMIB_BUILD_BENCH=ON
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target solver_comparison \
    micro_collide_stream ablation_copy_vs_swap
fi

# Vector flags the build actually compiled with (-march=native or the
# -mavx2 -mfma fallback), recorded alongside the numbers.
VECTOR_FLAGS="$(sed -n 's/^LBMIB_VECTOR_FLAGS:INTERNAL=//p' \
  "$BUILD_DIR/CMakeCache.txt" | head -1)"

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

# 1) Whole-step solver comparison (writes solver_comparison.{csv,json}
#    into its cwd).
(cd "$WORK_DIR" && "$OLDPWD/$BUILD_DIR/bench/solver_comparison" \
  "$STEPS" "$THREADS" "$EDGE" "$REPS")

# 2) Per-kernel SIMD microbench (writes micro_collide_stream.json into
#    its cwd).
(cd "$WORK_DIR" && "$OLDPWD/$BUILD_DIR/bench/micro_collide_stream" \
  "$EDGE")

# 3) Kernel-9 ablation microbench (console output only; keep it short).
"$BUILD_DIR/bench/ablation_copy_vs_swap" \
  --benchmark_min_time=0.05s 2>/dev/null ||
  "$BUILD_DIR/bench/ablation_copy_vs_swap" --benchmark_min_time=0.05

# 4) Performance-observatory snapshot: a short counted run emitting the
#    per-kernel roofline (counter availability included) as JSON. On a
#    locked-down host this degrades to time-only automatically; the JSON
#    then simply lacks the counter columns.
if [[ -x "$BUILD_DIR/examples/lbmib_run" ]]; then
  "$BUILD_DIR/examples/lbmib_run" --write-default "$WORK_DIR/obs.cfg" \
    >/dev/null
  (cd "$WORK_DIR" && "$OLDPWD/$BUILD_DIR/examples/lbmib_run" obs.cfg \
    --solver cube --steps "$((STEPS * 10))" --perf-counters \
    --roofline-out roofline.json >/dev/null)
fi

# 5) Wrap the machine-readable benches (and the roofline snapshot when
#    present) into BENCH_step.json with host and build metadata.
{
  printf '{\n'
  printf '  "harness": "scripts/run_benchmarks.sh",\n'
  printf '  "host": {"cpus": %s, "os": "%s"},\n' "$(nproc)" "$(uname -s)"
  printf '  "build": {"vector_flags": "%s"},\n' "$VECTOR_FLAGS"
  printf '  "params": {"steps": %s, "threads": %s, "edge": %s, "reps": %s},\n' \
    "$STEPS" "$THREADS" "$EDGE" "$REPS"
  printf '  "solver_comparison": '
  sed 's/^/  /' "$WORK_DIR/solver_comparison.json" | sed '1s/^  //' |
    sed '$s/$/,/'
  printf '  "micro_collide_stream": '
  if [[ -s "$WORK_DIR/roofline.json" ]]; then
    sed 's/^/  /' "$WORK_DIR/micro_collide_stream.json" | sed '1s/^  //' |
      sed '$s/$/,/'
    printf '  "perf_observatory": '
    sed 's/^/  /' "$WORK_DIR/roofline.json" | sed '1s/^  //'
  else
    sed 's/^/  /' "$WORK_DIR/micro_collide_stream.json" | sed '1s/^  //'
  fi
  printf '}\n'
} > BENCH_step.json

echo
echo "wrote BENCH_step.json:"
cat BENCH_step.json
