#!/usr/bin/env python3
"""Validate lbmib observability artifacts in CI.

Checks a Chrome trace-event JSON file (``--trace``) against the subset of
the spec Perfetto/chrome://tracing require of us:

  * top-level object with a non-empty ``traceEvents`` array,
  * every event is a complete ("X") or metadata ("M") event,
  * X events carry pid/tid/ts/dur/name/cat with sane values (dur >= 0),
  * per-tid ``ts`` is monotonically non-decreasing in file order (the
    tracer sorts its drain by (tid, start), so a violation means the
    exporter or ring reconstruction broke),
  * ``--expect`` span names all appear at least once.

Optionally validates a Prometheus text file (``--prometheus``) — every
non-comment line must parse as ``name[{labels}] value`` and every
``--expect-metrics`` name must be present — a metrics CSV (``--csv``)
for the ``metric,type,stat,value`` header, and a roofline JSON file
(``--roofline``, as written by ``lbmib_run --roofline-out``): machine
peaks must be positive, every kernel row must carry the analytic-model
fields with a sane bound verdict, and when ``counters_available`` is
true at least one row must carry measured counter fields (ipc etc.).

Exits non-zero with a description of the first failure. No third-party
imports: json/re/argparse only.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?\s+"
    r"[-+]?(\d+\.?\d*([eE][-+]?\d+)?|Inf|NaN)$"
)


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str, expected: list[str]) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' must be a non-empty array")

    names: set[str] = set()
    last_ts: dict[int, float] = {}
    n_complete = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            fail(f"{path}: event {i} has ph={ph!r}, expected 'X' or 'M'")
        for field in ("pid", "tid", "ts", "dur", "name", "cat"):
            if field not in ev:
                fail(f"{path}: event {i} missing field {field!r}")
        if ev["dur"] < 0:
            fail(f"{path}: event {i} has negative dur {ev['dur']}")
        tid = ev["tid"]
        if tid in last_ts and ev["ts"] < last_ts[tid]:
            fail(
                f"{path}: event {i} ts {ev['ts']} goes backwards on "
                f"tid {tid} (previous {last_ts[tid]})"
            )
        last_ts[tid] = ev["ts"]
        names.add(ev["name"])
        n_complete += 1

    if n_complete == 0:
        fail(f"{path}: no complete ('X') events")
    for want in expected:
        if want not in names:
            fail(f"{path}: expected span name {want!r} not found "
                 f"(have: {sorted(names)})")
    print(
        f"check_trace: {path}: OK — {n_complete} complete events, "
        f"{len(last_ts)} thread(s), {len(names)} distinct span names"
    )


def check_prometheus(path: str, expected: list[str]) -> None:
    seen: set[str] = set()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            if not PROM_LINE.match(line):
                fail(f"{path}:{lineno}: not a valid Prometheus sample "
                     f"line: {line!r}")
            seen.add(line.split("{")[0].split()[0])
    if not seen:
        fail(f"{path}: no samples")
    for want in expected:
        # A histogram appears as <name>_bucket/_sum/_count samples.
        if want not in seen and f"{want}_count" not in seen:
            fail(f"{path}: expected metric {want!r} not found "
                 f"(have: {sorted(seen)})")
    print(f"check_trace: {path}: OK — {len(seen)} metric series")


def check_csv(path: str) -> None:
    import csv as csvmod

    with open(path, encoding="utf-8", newline="") as f:
        rows = list(csvmod.reader(f))
    if not rows or rows[0] != ["metric", "type", "stat", "value"]:
        fail(f"{path}: first line must be 'metric,type,stat,value'")
    if len(rows) < 2:
        fail(f"{path}: no data rows")
    for lineno, row in enumerate(rows[1:], 2):
        # Metric names with label sets are RFC 4180-quoted by the
        # exporter, so a parsed row is always exactly 4 fields.
        if row and len(row) != 4:
            fail(f"{path}:{lineno}: expected 4 fields, got {row!r}")
        float(row[3])  # value must be numeric
    print(f"check_trace: {path}: OK — {len(rows) - 1} CSV rows")


def check_roofline(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    peaks = doc.get("peaks")
    if not isinstance(peaks, dict):
        fail(f"{path}: missing 'peaks' object")
    for field in ("gbps", "gflops", "balance_flop_per_byte"):
        v = peaks.get(field)
        if not isinstance(v, (int, float)) or v <= 0:
            fail(f"{path}: peaks.{field} must be a positive number, "
                 f"got {v!r}")
    if not isinstance(peaks.get("threads"), int) or peaks["threads"] < 1:
        fail(f"{path}: peaks.threads must be a positive integer")
    if not isinstance(doc.get("counters_available"), bool):
        fail(f"{path}: 'counters_available' must be a boolean")

    kernels = doc.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        fail(f"{path}: 'kernels' must be a non-empty array")
    counter_fields = ("ipc", "llc_miss_rate", "llc_miss_per_unit",
                      "measured_gbps", "stalled_backend_frac")
    n_with_counters = 0
    for i, row in enumerate(kernels):
        for field in ("kernel", "unit", "bound"):
            if not isinstance(row.get(field), str):
                fail(f"{path}: kernel {i} field {field!r} must be a "
                     f"string, got {row.get(field)!r}")
        if row["bound"] not in ("bandwidth", "compute"):
            fail(f"{path}: kernel {i} ({row['kernel']}) has bound="
                 f"{row['bound']!r}, expected bandwidth|compute")
        if row["unit"] not in ("node", "point"):
            fail(f"{path}: kernel {i} ({row['kernel']}) has unit="
                 f"{row['unit']!r}, expected node|point")
        for field in ("seconds", "ai_flop_per_byte", "model_gbytes",
                      "achieved_gbps", "achieved_gflops",
                      "roof_fraction"):
            v = row.get(field)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{path}: kernel {i} ({row['kernel']}) field "
                     f"{field!r} must be a non-negative number, "
                     f"got {v!r}")
        present = [f for f in counter_fields if f in row]
        if present:
            # Counter fields are all-or-nothing per row.
            missing = [f for f in counter_fields if f not in row]
            if missing:
                fail(f"{path}: kernel {i} ({row['kernel']}) has partial "
                     f"counter fields: missing {missing}")
            for field in counter_fields:
                if not isinstance(row[field], (int, float)):
                    fail(f"{path}: kernel {i} ({row['kernel']}) field "
                         f"{field!r} must be numeric")
            n_with_counters += 1
    if doc["counters_available"] and n_with_counters == 0:
        fail(f"{path}: counters_available is true but no kernel row "
             "carries counter fields")
    print(
        f"check_trace: {path}: OK — {len(kernels)} roofline rows, "
        f"{n_with_counters} with counters, peak {peaks['gbps']} GB/s / "
        f"{peaks['gflops']} GFLOP/s"
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--prometheus", help="Prometheus text file to validate")
    ap.add_argument("--csv", help="metrics CSV file to validate")
    ap.add_argument("--roofline",
                    help="roofline JSON (lbmib_run --roofline-out) to "
                    "validate")
    ap.add_argument(
        "--expect",
        default="",
        help="comma-separated span names that must appear in the trace",
    )
    ap.add_argument(
        "--expect-metrics",
        default="",
        help="comma-separated metric names that must appear in the "
        "Prometheus file",
    )
    args = ap.parse_args()
    if not (args.trace or args.prometheus or args.csv or args.roofline):
        ap.error("nothing to check: pass --trace, --prometheus, --csv, "
                 "or --roofline")

    if args.trace:
        check_trace(args.trace,
                    [s for s in args.expect.split(",") if s])
    if args.prometheus:
        check_prometheus(args.prometheus,
                         [s for s in args.expect_metrics.split(",") if s])
    if args.csv:
        check_csv(args.csv)
    if args.roofline:
        check_roofline(args.roofline)


if __name__ == "__main__":
    main()
