#!/usr/bin/env bash
# Gating vectorization check for the fused collide-stream hot path.
#
# Usage: scripts/check_vectorization.sh [extra-vector-flags...]
#
# Compiles the two TUs that carry the SIMD kernels standalone with
# -fopt-info-vec and asserts the compiler actually vectorized their hot
# loops:
#   * src/lbm/simd_kernels.cpp — the lane-block BGK/MRT collide and
#     fused collide-stream kernels,
#   * src/lbm/macroscopic.cpp  — the lane-block moment accumulation and
#     masked velocity writeback (kernel 7).
# A refactor that silently breaks `#pragma omp simd` legality (an
# aliasing hazard, a non-affine access, an early exit) turns those loops
# scalar with no warning and a ~4x hot-path regression; this check makes
# that a red CI run instead of a quiet perf cliff.
#
# Vector flags default to the build's probe order: -march=native when the
# compiler supports it, else the portable -mavx2 -mfma fallback. Pass
# explicit flags to pin a leg (CI runs both: the default and an
# "-mavx2 -mfma" leg mirroring LBMIB_NATIVE_ARCH=OFF).
set -euo pipefail

cd "$(dirname "$0")/.."

CXX="${CXX:-g++}"

if [[ $# -gt 0 ]]; then
  VECTOR_FLAGS=("$@")
elif echo 'int main(){}' |
  "$CXX" -x c++ -march=native -fsyntax-only - 2>/dev/null; then
  VECTOR_FLAGS=(-march=native)
else
  VECTOR_FLAGS=(-mavx2 -mfma)
fi

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

# file:min_vectorized_loop_count. The thresholds are deliberately well
# below the current counts (20 and 5 with GCC 12 at -march=native): the
# gate is "the hot loops still vectorize", not "the report is
# byte-stable across compiler versions".
CHECKS=(
  "src/lbm/simd_kernels.cpp:8"
  "src/lbm/macroscopic.cpp:2"
)

status=0
for check in "${CHECKS[@]}"; do
  tu="${check%:*}"
  want="${check##*:}"
  report="$WORK_DIR/$(basename "$tu").optinfo"
  "$CXX" -std=c++20 -O3 "${VECTOR_FLAGS[@]}" -fopenmp-simd \
    -fopt-info-vec -I src -I include \
    -c "$tu" -o "$WORK_DIR/$(basename "$tu").o" 2> "$report"
  got="$(grep -c 'loop vectorized' "$report" || true)"
  if [[ "$got" -ge "$want" ]]; then
    echo "OK   $tu: $got vectorized loops (need >= $want)" \
      "[${VECTOR_FLAGS[*]}]"
  else
    echo "FAIL $tu: only $got vectorized loops (need >= $want)" \
      "[${VECTOR_FLAGS[*]}]" >&2
    sed 's/^/     /' "$report" >&2
    status=1
  fi
done

exit "$status"
