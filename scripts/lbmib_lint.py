#!/usr/bin/env python3
"""Portable engine for the five lbmib-* protocol checks.

The authoritative implementation is the clang-tidy plugin in
tools/lint/ (lbmib-tidy, DESIGN.md §17); this module re-implements the
same checks — same names, same message text, same NOLINT handling — as
a dependency-free regex engine so the protocols still gate where the
LLVM/Clang dev packages are absent. scripts/lint.sh and the
`lint`-labeled ctest fixtures select whichever engine is available, and
the fixtures assert identical diagnostic substrings from both, which is
what keeps the two engines honest about each other.

Checks (rationale lives next to each implementation):
  lbmib-raw-sync             raw std sync outside src/parallel/
  lbmib-missing-cancel-point unbounded loops with no cancel/heartbeat
  lbmib-df-parity            df/df_new parity-swap protocol (PR 3)
  lbmib-lock-discipline      RAII guards; no blocking under SpinLock
  lbmib-nondeterminism       replayability of kernels and schedulers

Suppressions: standard clang-tidy syntax — `// NOLINT(lbmib-raw-sync)`
on the flagged line or `// NOLINTNEXTLINE(...)` on the line above, with
`*` globs honored. A reason on the same line is mandatory by repo
convention.

Output: clang-tidy-style `path:line:col: warning: message [check]`.
Exit status: 0 clean, 1 diagnostics emitted, 2 usage/self-test failure.
"""

from __future__ import annotations

import argparse
import fnmatch
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# --------------------------------------------------------------------
# shared text machinery


def strip_code(lines: list[str]) -> list[str]:
    """Blank out comments and string/char literals, preserving line
    structure, so prose and log text never match code patterns."""
    out: list[str] = []
    in_block = False
    for line in lines:
        buf: list[str] = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    buf.append(" " * (n - i))
                    i = n
                else:
                    buf.append(" " * (end + 2 - i))
                    i = end + 2
                    in_block = False
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                buf.append(" " * (n - i))
                i = n
            elif ch == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
            elif ch in "\"'":
                quote = ch
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        buf.append("  ")
                        i += 2
                        continue
                    if line[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    buf.append(" ")
                    i += 1
            else:
                buf.append(ch)
                i += 1
        out.append("".join(buf))
    return out


NOLINT = re.compile(r"NOLINT(NEXTLINE)?(?:\(([^)]*)\))?")


def build_suppressions(lines: list[str]) -> list[tuple[bool, list[str]]]:
    """Per-line (has_marker_for_this_line, check-glob list). Empty glob
    list means 'suppress everything' (bare NOLINT)."""
    per_line: dict[int, list[str] | None] = {}
    for idx, line in enumerate(lines):
        for m in NOLINT.finditer(line):
            target = idx + 1 if m.group(1) else idx
            globs = (
                [g.strip() for g in m.group(2).split(",") if g.strip()]
                if m.group(2) is not None
                else None
            )
            if target in per_line and per_line[target] is not None:
                if globs is None:
                    per_line[target] = None
                else:
                    per_line[target].extend(globs)  # type: ignore[union-attr]
            elif target not in per_line:
                per_line[target] = globs
    result: list[tuple[bool, list[str]]] = []
    for idx in range(len(lines) + 2):
        entry = per_line.get(idx, False)
        if entry is False:
            result.append((False, []))
        elif entry is None:
            result.append((True, []))
        else:
            result.append((True, entry))
    return result


class FileCtx:
    def __init__(self, path: pathlib.Path, rel: str):
        self.path = path
        self.rel = rel
        text = path.read_text(errors="replace")
        self.lines = text.splitlines()
        self.stripped = strip_code(self.lines)
        self.suppress = build_suppressions(self.lines)

    def suppressed(self, line_no: int, check: str) -> bool:
        # line_no is 1-based.
        if line_no - 1 >= len(self.suppress):
            return False
        has, globs = self.suppress[line_no - 1]
        if not has:
            return False
        if not globs:
            return True
        return any(fnmatch.fnmatchcase(check, g) for g in globs)


class Diag:
    def __init__(self, rel: str, line: int, col: int, check: str, msg: str):
        self.rel, self.line, self.col = rel, line, col
        self.check, self.msg = check, msg

    def __str__(self) -> str:
        return (
            f"{self.rel}:{self.line}:{self.col}: warning: "
            f"{self.msg} [{self.check}]"
        )


def find_body_span(ctx: FileCtx, line_idx: int, col: int) -> tuple[int, int]:
    """(first, last) 0-based line range of the brace-delimited body
    starting at/after (line_idx, col). Falls back to the next line when
    no opening brace is found nearby (braceless single statement)."""
    depth = 0
    opened = False
    for li in range(line_idx, min(line_idx + 4, len(ctx.stripped))):
        text = ctx.stripped[li]
        start = col if li == line_idx else 0
        for ci in range(start, len(text)):
            ch = text[ci]
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth == 0:
                    return (line_idx, li)
        if opened:
            # Scan on until the brace closes.
            for lj in range(li + 1, len(ctx.stripped)):
                for ch in ctx.stripped[lj]:
                    if ch == "{":
                        depth += 1
                    elif ch == "}":
                        depth -= 1
                        if depth == 0:
                            return (line_idx, lj)
            return (line_idx, len(ctx.stripped) - 1)
    return (line_idx, min(line_idx + 1, len(ctx.stripped) - 1))


# --------------------------------------------------------------------
# check: lbmib-raw-sync

RAW_SYNC_ALLOWED = re.compile(r"(^|/)src/parallel/")

RAW_SYNC_PATTERNS = [
    (
        re.compile(
            r"std::(?:recursive_|timed_|shared_|recursive_timed_"
            r"|shared_timed_)?mutex\b"
        ),
        "mutex",
        "use lbmib::Mutex with MutexLock, or lbmib::SpinLock with "
        "SpinLockGuard (src/parallel/mutex.hpp, spinlock.hpp)",
    ),
    (
        re.compile(r"std::condition_variable(?:_any)?\b"),
        "condition_variable",
        "route the wait through lbmib::Mutex::wait/wait_for "
        "(src/parallel/mutex.hpp) so cancellation and the model checker "
        "see the blocking edge",
    ),
    (
        re.compile(r"std::j?thread\b(?!::)"),
        "thread",
        "use lbmib::ThreadTeam (src/parallel/thread_team.hpp), which "
        "enrolls workers in heartbeats, cancellation and the race "
        "detector",
    ),
    (
        re.compile(r"\batomic_(?:thread|signal)_fence\b"),
        "fence",
        "publish through a release/acquire pair on a named std::atomic "
        "instead: the detectors model objects, not fences",
    ),
    (
        re.compile(
            r"\bpthread_(?:create|mutex_init|mutex_lock|mutex_unlock"
            r"|cond_init|cond_wait|cond_signal|barrier_init"
            r"|barrier_wait)\b"
        ),
        "pthread",
        "use the instrumented primitives in src/parallel/",
    ),
]


def check_raw_sync(ctx: FileCtx) -> list[Diag]:
    if RAW_SYNC_ALLOWED.search(ctx.rel):
        return []
    out = []
    for idx, text in enumerate(ctx.stripped):
        for pat, _kind, hint in RAW_SYNC_PATTERNS:
            for m in pat.finditer(text):
                out.append(
                    Diag(
                        ctx.rel,
                        idx + 1,
                        m.start() + 1,
                        "lbmib-raw-sync",
                        f"raw '{m.group(0)}' outside src/parallel/ is "
                        "invisible to the race detector, model checker "
                        f"and cancellation layer; {hint}",
                    )
                )
    return out


# --------------------------------------------------------------------
# check: lbmib-missing-cancel-point

UNBOUNDED_LOOP = re.compile(
    r"(?:^|[^\w])(while\s*\(\s*(?:true|1)\s*\)|for\s*\(\s*;\s*;\s*\))"
)
CANCEL_MARKERS = re.compile(
    r"cancel_point|throw_if_cancelled|cancelled\s*\(|\.beat\s*\("
    r"|heartbeat|\bwait(?:_for|_until|_until_for)?\s*\(|arrive_and_wait"
    r"|\brecv(?:_for)?\s*\(|try_recv|sched_point"
)


def check_missing_cancel_point(ctx: FileCtx) -> list[Diag]:
    out = []
    for idx, text in enumerate(ctx.stripped):
        for m in UNBOUNDED_LOOP.finditer(text):
            first, last = find_body_span(ctx, idx, m.end(1))
            body = "\n".join(ctx.stripped[first : last + 1])
            if CANCEL_MARKERS.search(body):
                continue
            out.append(
                Diag(
                    ctx.rel,
                    idx + 1,
                    m.start(1) + 1,
                    "lbmib-missing-cancel-point",
                    "unbounded loop has no cancel_point(), heartbeat, or "
                    "cancellable blocking call on any path; a wedge here "
                    "is invisible to the watchdog and cannot be unwound "
                    "(src/parallel/cancel.hpp)",
                )
            )
    return out


# --------------------------------------------------------------------
# check: lbmib-df-parity

DF_SWAP_ALLOWED = re.compile(
    r"(^|/)src/(core/[a-z0-9_]+_solver\.cpp|lbm/fluid_grid\.|cube/cube_grid\.)"
)
DF_GRID_INTERNAL = re.compile(r"(^|/)src/(cube/cube_grid\.|lbm/fluid_grid\.)")
DF_SWAP_CALL = re.compile(
    r"(?:\.|->)\s*(swap_buffers|swap_df_buffers|set_swap_parity)\s*\("
)
DF_SLOT_CONST = re.compile(r"\bkDf(?:New)?Slot\b")
DF_RAW_FIELD = re.compile(r"\b(df_new_base_|df_base_|df_new_|df_)(?![\w])")


def check_df_parity(ctx: FileCtx) -> list[Diag]:
    out = []
    swap_ok = bool(DF_SWAP_ALLOWED.search(ctx.rel))
    internal_ok = bool(DF_GRID_INTERNAL.search(ctx.rel))
    for idx, text in enumerate(ctx.stripped):
        if not swap_ok:
            for m in DF_SWAP_CALL.finditer(text):
                out.append(
                    Diag(
                        ctx.rel,
                        idx + 1,
                        m.start() + 1,
                        "lbmib-df-parity",
                        f"'{m.group(1)}' flips the df/df_new parity; only "
                        "the solver step loops (src/core/*_solver.cpp) may "
                        "call it — everything else must read through the "
                        "parity accessors",
                    )
                )
        if not internal_ok:
            for m in DF_SLOT_CONST.finditer(text):
                out.append(
                    Diag(
                        ctx.rel,
                        idx + 1,
                        m.start() + 1,
                        "lbmib-df-parity",
                        f"raw df slot constant '{m.group(0)}' names the "
                        "construction-time layout and is wrong after "
                        "swap_df_buffers(); use df_slot_base()/"
                        "df_new_slot_base(), or CubeGrid::df_base_for"
                        "(parity) for a captured parity",
                    )
                )
            for m in DF_RAW_FIELD.finditer(text):
                out.append(
                    Diag(
                        ctx.rel,
                        idx + 1,
                        m.start() + 1,
                        "lbmib-df-parity",
                        f"direct access to df storage '{m.group(1)}' "
                        "bypasses the parity accessors; read through "
                        "df()/df_new() or the slot-base helpers",
                    )
                )
    return out


# --------------------------------------------------------------------
# check: lbmib-lock-discipline

LOCK_ALLOWED = re.compile(r"(^|/)src/parallel/")
MANUAL_LOCK = re.compile(r"(?:\.|->)\s*(lock|unlock)\s*\(\s*\)")
SPIN_GUARD_DECL = re.compile(r"\bSpinLockGuard\s+(\w+)\s*[({]")
BLOCKING_CALL = re.compile(
    r"(?:\.|->)\s*(arrive_and_wait|recv|recv_for|wait|wait_for)\s*\("
)


def check_lock_discipline(ctx: FileCtx) -> list[Diag]:
    out = []
    if not LOCK_ALLOWED.search(ctx.rel):
        for idx, text in enumerate(ctx.stripped):
            for m in MANUAL_LOCK.finditer(text):
                out.append(
                    Diag(
                        ctx.rel,
                        idx + 1,
                        m.start() + 1,
                        "lbmib-lock-discipline",
                        f"manual '{m.group(1)}()' call; use a RAII guard "
                        "(SpinLockGuard, MutexLock, std::lock_guard) so "
                        "the lock is released on every path, including "
                        "exceptions and cancellation unwinds",
                    )
                )
    # Blocking while a SpinLockGuard is live: applies everywhere,
    # including src/parallel/.
    for idx, text in enumerate(ctx.stripped):
        for g in SPIN_GUARD_DECL.finditer(text):
            guard = g.group(1)
            # Scan to the end of the block the guard lives in.
            depth = 0
            li, ci = idx, g.end()
            while li < len(ctx.stripped):
                line = ctx.stripped[li]
                for cj in range(ci, len(line)):
                    ch = line[cj]
                    if ch == "{":
                        depth += 1
                    elif ch == "}":
                        depth -= 1
                        if depth < 0:
                            li = len(ctx.stripped)
                            break
                if li >= len(ctx.stripped):
                    break
                if li != idx or True:
                    for b in BLOCKING_CALL.finditer(
                        line[ci:] if li == idx else line
                    ):
                        col = b.start() + (ci if li == idx else 0)
                        out.append(
                            Diag(
                                ctx.rel,
                                li + 1,
                                col + 1,
                                "lbmib-lock-discipline",
                                f"blocking call '{b.group(1)}' while a "
                                f"SpinLock is held (guard '{guard}' is "
                                "live): spin-waiters burn a core and "
                                "defer their cancel polls; scope the "
                                "guard so it is released before blocking",
                            )
                        )
                li += 1
                ci = 0
    return out


# --------------------------------------------------------------------
# check: lbmib-nondeterminism

NONDET_CALL = re.compile(
    r"\b(rand|srand|time|clock|drand48|lrand48|gettimeofday)\s*\("
)
NONDET_WALLCLOCK = re.compile(
    r"std::chrono::(?:system_clock|high_resolution_clock)::now\b"
)
NONDET_RANDOM_DEVICE = re.compile(r"std::random_device\b")
NONDET_PTR_KEYED = re.compile(
    r"std::(map|set|multimap|multiset)\s*<\s*[^,>]*\*"
)


def check_nondeterminism(ctx: FileCtx) -> list[Diag]:
    out = []
    for idx, text in enumerate(ctx.stripped):
        for m in NONDET_CALL.finditer(text):
            out.append(
                Diag(
                    ctx.rel,
                    idx + 1,
                    m.start() + 1,
                    "lbmib-nondeterminism",
                    f"'{m.group(1)}' is nondeterministic across runs; "
                    "kernel/scheduler code must stay replayable for the "
                    "model checker and checkpoint replay — use "
                    "lbmib::SplitMix64 (src/common/rng.hpp) with an "
                    "explicit seed, or take the time as a parameter",
                )
            )
        for m in NONDET_WALLCLOCK.finditer(text):
            out.append(
                Diag(
                    ctx.rel,
                    idx + 1,
                    m.start() + 1,
                    "lbmib-nondeterminism",
                    "wall-clock read is nondeterministic across runs; use "
                    "std::chrono::steady_clock for durations, or take the "
                    "timestamp as a parameter so replays can pin it",
                )
            )
        for m in NONDET_RANDOM_DEVICE.finditer(text):
            out.append(
                Diag(
                    ctx.rel,
                    idx + 1,
                    m.start() + 1,
                    "lbmib-nondeterminism",
                    "std::random_device draws from the OS entropy pool "
                    "and cannot be replayed; seed lbmib::SplitMix64 "
                    "(src/common/rng.hpp) explicitly instead",
                )
            )
        for m in NONDET_PTR_KEYED.finditer(text):
            out.append(
                Diag(
                    ctx.rel,
                    idx + 1,
                    m.start() + 1,
                    "lbmib-nondeterminism",
                    f"pointer-keyed 'std::{m.group(1)}' iterates in "
                    "address order, which differs run to run and breaks "
                    "model-checker and checkpoint replay; key by a "
                    "stable id instead",
                )
            )
    return out


# --------------------------------------------------------------------
# driver

CHECKS = {
    "lbmib-raw-sync": check_raw_sync,
    "lbmib-missing-cancel-point": check_missing_cancel_point,
    "lbmib-df-parity": check_df_parity,
    "lbmib-lock-discipline": check_lock_discipline,
    "lbmib-nondeterminism": check_nondeterminism,
}


def lint_file(path: pathlib.Path, rel: str | None = None) -> list[Diag]:
    if rel is None:
        try:
            rel = path.resolve().relative_to(REPO).as_posix()
        except ValueError:
            rel = path.as_posix()
    ctx = FileCtx(path, rel)
    diags: list[Diag] = []
    for check, fn in CHECKS.items():
        for d in fn(ctx):
            if not ctx.suppressed(d.line, check):
                diags.append(d)
    diags.sort(key=lambda d: (d.line, d.col, d.check))
    return diags


def tree_files() -> list[pathlib.Path]:
    return sorted(
        p
        for pattern in ("src/**/*.hpp", "src/**/*.cpp", "src/**/*.h")
        for p in REPO.glob(pattern)
    )


# --------------------------------------------------------------------
# self-test: each check must fire on an injected violation, stay silent
# on the compliant variant, and honor NOLINT.

SELF_TESTS = [
    # (check, violating snippet, clean snippet)
    (
        "lbmib-raw-sync",
        "std::mutex m_;\n",
        "lbmib::Mutex m_;\n",
    ),
    (
        "lbmib-missing-cancel-point",
        "void f() {\n  for (;;) {\n    step();\n  }\n}\n",
        "void f() {\n  for (;;) {\n    cancel_point(\"f\");\n    step();\n"
        "  }\n}\n",
    ),
    (
        "lbmib-df-parity",
        "void f(CubeGrid& g) { g.swap_df_buffers(); }\n",
        "void f(CubeGrid& g) { auto b = g.df_slot_base(); (void)b; }\n",
    ),
    (
        "lbmib-lock-discipline",
        "void f() {\n  mu.lock();\n  touch();\n  mu.unlock();\n}\n",
        "void f() {\n  SpinLockGuard guard(mu);\n  touch();\n}\n",
    ),
    (
        "lbmib-nondeterminism",
        "int f() { return rand(); }\n",
        "int f(lbmib::SplitMix64& rng) { return int(rng.next()); }\n",
    ),
    (
        "lbmib-raw-sync",  # NOLINT suppression path
        "std::thread t_;  // not suppressed\n",
        "std::thread t_;  // NOLINT(lbmib-raw-sync) monitor daemon\n",
    ),
    (
        "lbmib-missing-cancel-point",  # NOLINTNEXTLINE + glob
        "while (true) {\n  spin();\n}\n",
        "// NOLINTNEXTLINE(lbmib-*) bounded by the frame stack\n"
        "while (true) {\n  spin();\n}\n",
    ),
]


def self_test() -> int:
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i, (check, bad, good) in enumerate(SELF_TESTS):
            for variant, text, expect_fire in (
                ("bad", bad, True),
                ("good", good, False),
            ):
                p = pathlib.Path(tmp) / f"case{i}_{variant}.cpp"
                p.write_text(text)
                diags = [
                    d for d in lint_file(p, p.name) if d.check == check
                ]
                fired = len(diags) > 0
                if fired != expect_fire:
                    failures += 1
                    print(
                        f"self-test FAIL: {check} case {i} {variant}: "
                        f"expected fire={expect_fire}, got {fired}",
                        file=sys.stderr,
                    )
    if failures == 0:
        print(f"lbmib_lint self-test: {len(SELF_TESTS) * 2} cases ok")
        return 0
    return 2


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="files to lint (default: src/)")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.list_checks:
        for name in CHECKS:
            print(name)
        return 0

    files = (
        [pathlib.Path(f) for f in args.files] if args.files else tree_files()
    )
    total = 0
    for f in files:
        if not f.exists():
            print(f"error: no such file: {f}", file=sys.stderr)
            return 2
        for d in lint_file(f):
            print(d)
            total += 1
    if total:
        print(f"lbmib_lint: {total} diagnostic(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
