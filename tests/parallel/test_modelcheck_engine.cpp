// Engine-level tests for the DPOR model checker: schedule
// serialization, exploration mechanics (exhaustion, partial-order
// reduction, preemption bound, step limit), failure detection
// (assertions, deadlock) and deterministic replay. Primitive-protocol
// models live in test_modelcheck_models.cpp; injected-bug models in
// test_modelcheck_bugs.cpp.
#include "parallel/modelcheck.hpp"

#include <gtest/gtest.h>

#if LBMIB_MODELCHECK_ENABLED

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "parallel/spinlock.hpp"

namespace lbmib {
namespace {

mc::Options opts(const char* name) {
  mc::Options options;
  options.name = name;
  return options;
}

TEST(McSchedule, SerializeParseRoundtrip) {
  mc::Schedule schedule;
  schedule.choices = {0, 1, 1, 0, 2};
  EXPECT_EQ(schedule.serialize(), "v1:0,1,1,0,2");
  const mc::Schedule parsed = mc::Schedule::parse(schedule.serialize());
  EXPECT_EQ(parsed.choices, schedule.choices);
  EXPECT_TRUE(mc::Schedule::parse("v1:").empty());
}

TEST(McSchedule, ParseRejectsMalformedInput) {
  EXPECT_THROW(mc::Schedule::parse("0,1"), Error);
  EXPECT_THROW(mc::Schedule::parse("v1:zero"), Error);
  EXPECT_THROW(mc::Schedule::parse("v1:-2"), Error);
}

TEST(McEngine, SingleThreadExhaustsInOneSchedule) {
  int factory_calls = 0;
  const mc::Result result = mc::explore(opts("single"), [&factory_calls] {
    ++factory_calls;
    std::vector<mc::ThreadBody> threads;
    threads.push_back([] {
      int x = 0;
      mc::sched_point(mc::Op::kAccess, &x);
      x = 1;
      mc::sched_point(mc::Op::kAccess, &x);
      mc::check(x == 1, "x survived the schedule point");
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.schedules, 1u);
  EXPECT_EQ(factory_calls, 1);
}

// Partial-order reduction: threads touching disjoint objects have no
// dependent events, so one schedule covers the whole space.
TEST(McEngine, IndependentThreadsNeedOneSchedule) {
  const mc::Result result = mc::explore(opts("independent"), [] {
    auto a = std::make_shared<int>(0);
    auto b = std::make_shared<int>(0);
    std::vector<mc::ThreadBody> threads;
    threads.push_back([a] {
      mc::sched_point(mc::Op::kAccess, a.get());
      *a = 1;
    });
    threads.push_back([b] {
      mc::sched_point(mc::Op::kAccess, b.get());
      *b = 1;
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.schedules, 1u);
}

TEST(McEngine, DependentAccessesExploreBothOrders) {
  const auto orders = std::make_shared<std::set<std::string>>();
  const mc::Result result = mc::explore(opts("orders"), [orders] {
    auto log = std::make_shared<std::string>();
    auto obj = std::make_shared<int>(0);
    std::vector<mc::ThreadBody> threads;
    for (const char label : {'A', 'B'}) {
      threads.push_back([orders, log, obj, label] {
        mc::sched_point(mc::Op::kAccess, obj.get());
        log->push_back(label);
        if (log->size() == 2) orders->insert(*log);
      });
    }
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.schedules, 2u);
  EXPECT_EQ(orders->count("AB"), 1u);
  EXPECT_EQ(orders->count("BA"), 1u);
}

mc::ModelFactory order_sensitive_assertion_model() {
  return [] {
    auto x = std::make_shared<int>(0);
    std::vector<mc::ThreadBody> threads;
    threads.push_back([x] {
      mc::sched_point(mc::Op::kAccess, x.get());
      *x = 1;
    });
    threads.push_back([x] {
      mc::sched_point(mc::Op::kAccess, x.get());
      mc::check(*x == 1, "writer must go first");
    });
    return threads;
  };
}

TEST(McEngine, AssertionFailureYieldsReplayableSchedule) {
  const mc::ModelFactory model = order_sensitive_assertion_model();
  const mc::Result result = mc::explore(opts("assert"), model);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("writer must go first"), std::string::npos)
      << result.error;
  ASSERT_FALSE(result.failing_schedule.empty());
  ASSERT_FALSE(result.trace.empty());

  const mc::Result replayed =
      mc::replay(opts("assert"), model, result.failing_schedule);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.error, result.error);
  EXPECT_EQ(replayed.trace, result.trace);
}

TEST(McEngine, ReplayThrowsOnDivergentSchedule) {
  const mc::ModelFactory model = order_sensitive_assertion_model();
  mc::Schedule bogus;
  bogus.choices = {7, 7, 7};  // thread 7 never exists
  EXPECT_THROW(mc::replay(opts("diverge"), model, bogus), Error);
}

// The classic AB-BA cycle: some interleaving leaves each thread holding
// one lock and blocked on the other, which the engine must report as a
// structural deadlock (the cooperative SpinLock path makes the blocked
// threads visible instead of spinning).
TEST(McEngine, LockCycleDetectedAsDeadlock) {
  const mc::Result result = mc::explore(opts("abba"), [] {
    auto a = std::make_shared<SpinLock>();
    auto b = std::make_shared<SpinLock>();
    std::vector<mc::ThreadBody> threads;
    threads.push_back([a, b] {
      a->lock();
      b->lock();
      b->unlock();
      a->unlock();
    });
    threads.push_back([a, b] {
      b->lock();
      a->lock();
      a->unlock();
      b->unlock();
    });
    return threads;
  });
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("deadlock"), std::string::npos)
      << result.error;
  EXPECT_FALSE(result.failing_schedule.empty());
}

mc::ModelFactory contended_counter_model() {
  return [] {
    auto obj = std::make_shared<int>(0);
    std::vector<mc::ThreadBody> threads;
    for (int t = 0; t < 2; ++t) {
      threads.push_back([obj] {
        for (int i = 0; i < 3; ++i) {
          mc::sched_point(mc::Op::kAccess, obj.get());
        }
      });
    }
    return threads;
  };
}

TEST(McEngine, PreemptionBoundPrunesScheduleSpace) {
  const mc::ModelFactory model = contended_counter_model();
  const mc::Result full = mc::explore(opts("bound-off"), model);
  mc::Options bounded = opts("bound-1");
  bounded.preemption_bound = 1;
  const mc::Result pruned = mc::explore(bounded, model);

  EXPECT_TRUE(full.ok) << full.error;
  EXPECT_TRUE(pruned.ok) << pruned.error;
  EXPECT_TRUE(full.exhausted);
  EXPECT_TRUE(pruned.exhausted);
  EXPECT_FALSE(full.bound_limited);
  EXPECT_TRUE(pruned.bound_limited);
  EXPECT_LT(pruned.schedules, full.schedules);
}

TEST(McEngine, MaxSchedulesCapStopsWithoutExhausting) {
  mc::Options capped = opts("capped");
  capped.max_schedules = 1;
  const mc::Result result = mc::explore(capped, contended_counter_model());
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.schedules, 1u);
  EXPECT_FALSE(result.exhausted);
}

TEST(McEngine, StepLimitFlagsLivelock) {
  mc::Options options = opts("livelock");
  options.max_steps = 50;
  const mc::Result result = mc::explore(options, [] {
    std::vector<mc::ThreadBody> threads;
    threads.push_back([] {
      for (;;) mc::sched_point(mc::Op::kYield, nullptr);
    });
    return threads;
  });
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("step limit"), std::string::npos)
      << result.error;
}

TEST(McEngine, SpawnAndJoinDynamicThreads) {
  const mc::Result result = mc::explore(opts("spawn"), [] {
    std::vector<mc::ThreadBody> threads;
    threads.push_back([] {
      auto flag = std::make_shared<int>(0);
      const int child = mc::spawn_thread([flag] {
        mc::sched_point(mc::Op::kAccess, flag.get());
        *flag = 1;
      });
      mc::join_thread(child);
      mc::check(*flag == 1, "child finished before join returned");
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
}

TEST(McEngine, FailureWritesScheduleArtifact) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "mc_artifacts";
  std::filesystem::remove_all(dir);
  mc::Options options = opts("artifact");
  options.artifact_dir = dir.string();
  const mc::Result result =
      mc::explore(options, order_sensitive_assertion_model());
  ASSERT_FALSE(result.ok);

  std::ifstream in(dir / "artifact.schedule");
  ASSERT_TRUE(in.is_open());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("schedule: v1:"), std::string::npos);
  EXPECT_NE(contents.str().find("writer must go first"), std::string::npos);
}

// Object names registered via name_object show up in traces, making the
// failure artifact legible without knowing the model's addresses.
TEST(McEngine, NamedObjectsAppearInTrace) {
  const mc::ModelFactory model = [] {
    auto obj = std::make_shared<int>(0);
    std::vector<mc::ThreadBody> threads;
    threads.push_back([obj] {
      mc::name_object(obj.get(), "the-counter");
      mc::sched_point(mc::Op::kAccess, obj.get());
      mc::check(false, "forced failure to capture the trace");
    });
    return threads;
  };
  const mc::Result result = mc::explore(opts("names"), model);
  ASSERT_FALSE(result.ok);
  bool found = false;
  for (const std::string& line : result.trace) {
    if (line.find("the-counter") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace lbmib

#else  // !LBMIB_MODELCHECK_ENABLED

TEST(McEngine, RequiresModelcheckBuild) {
  GTEST_SKIP() << "built without LBMIB_MODELCHECK";
}

#endif
