#include <gtest/gtest.h>

#include <atomic>
#include <exception>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "parallel/barrier.hpp"
#include "parallel/channel.hpp"
#include "parallel/race_detector.hpp"
#include "parallel/spinlock.hpp"
#include "parallel/thread_team.hpp"

#if LBMIB_RACE_DETECT_ENABLED
#include "cube/cube_grid.hpp"
#include "cube/cube_kernels.hpp"
#endif

namespace lbmib {
namespace {

/// Runs `first` on one thread, then `second` on a different thread that
/// is alive at the same time: a joined thread's id may be recycled, and
/// the detector keys its slots on thread ids, so the second closure must
/// not inherit the first one's slot. The handshake is a raw atomic the
/// detector cannot see, so no happens-before edge leaks into the
/// schedule under test.
template <class F1, class F2>
void sequenced_on_two_threads(F1&& first, F2&& second) {
  std::atomic<bool> first_done{false};
  std::exception_ptr error;
  std::thread a([&] {
    first();
    first_done.store(true, std::memory_order_release);
  });
  std::thread b([&] {
    while (!first_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    try {
      second();
    } catch (...) {
      error = std::current_exception();
    }
  });
  a.join();
  b.join();
  if (error) std::rethrow_exception(error);
}

// --- direct detector API --------------------------------------------------
// These drive RaceDetector itself, independent of the build's hook gate,
// so the algorithm is tested even in plain builds.

constexpr RaceField kF = RaceField::kDf;
constexpr auto kRd = RaceAccess::kRead;
constexpr auto kWr = RaceAccess::kWrite;
constexpr auto kSc = RaceAccess::kScatter;

TEST(RaceDetector, UnorderedWritesConflict) {
  RaceDetector rd;
  int space = 0;
  EXPECT_THROW(sequenced_on_two_threads(
                   [&] { rd.on_access(&space, 0, kF, kWr, "first write"); },
                   [&] { rd.on_access(&space, 0, kF, kWr, "second write"); }),
               Error);
}

TEST(RaceDetector, UnorderedReadThenWriteConflicts) {
  RaceDetector rd;
  int space = 0;
  EXPECT_THROW(sequenced_on_two_threads(
                   [&] { rd.on_access(&space, 3, kF, kRd, "read"); },
                   [&] { rd.on_access(&space, 3, kF, kWr, "write"); }),
               Error);
}

TEST(RaceDetector, ConcurrentReadsAreClean) {
  RaceDetector rd;
  int space = 0;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] { rd.on_access(&space, 0, kF, kRd, "read a"); },
      [&] { rd.on_access(&space, 0, kF, kRd, "read b"); }));
}

TEST(RaceDetector, ScatterScatterCommutes) {
  // Atomic force accumulation from two unordered threads is legal...
  RaceDetector rd;
  int space = 0;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] { rd.on_access(&space, 0, RaceField::kForce, kSc, "scatter a"); },
      [&] { rd.on_access(&space, 0, RaceField::kForce, kSc, "scatter b"); }));
}

TEST(RaceDetector, ScatterThenUnorderedReadConflicts) {
  // ...but reading the accumulated value without an ordering edge is not.
  RaceDetector rd;
  int space = 0;
  EXPECT_THROW(
      sequenced_on_two_threads(
          [&] { rd.on_access(&space, 0, RaceField::kForce, kSc, "scatter"); },
          [&] { rd.on_access(&space, 0, RaceField::kForce, kRd, "read"); }),
      Error);
}

TEST(RaceDetector, DistinctLocationsAndFieldsAreIndependent) {
  RaceDetector rd;
  int space = 0;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] {
        rd.on_access(&space, 0, RaceField::kDf, kWr, "df write");
      },
      [&] {
        rd.on_access(&space, 1, RaceField::kDf, kWr, "other cube");
        rd.on_access(&space, 0, RaceField::kMacro, kWr, "other field");
      }));
}

TEST(RaceDetector, ReleaseAcquireEdgeOrders) {
  RaceDetector rd;
  int space = 0;
  int counter = 0;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] {
        rd.on_access(&space, 0, kF, kWr, "producer write");
        rd.edge_release(&counter);
      },
      [&] {
        rd.edge_acquire(&counter);
        rd.on_access(&space, 0, kF, kWr, "consumer write");
      }));
}

TEST(RaceDetector, MissingDataflowEdgeDetected) {
  // The consumer acquires the wrong dependence counter, as a task-graph
  // bug that dropped an edge would: the producer's write stays
  // unordered and must fire deterministically.
  for (int run = 0; run < 10; ++run) {
    RaceDetector rd;
    int space = 0;
    int counter = 0;
    int wrong_counter = 0;
    EXPECT_THROW(sequenced_on_two_threads(
                     [&] {
                       rd.on_access(&space, 0, kF, kWr, "producer write");
                       rd.edge_release(&counter);
                     },
                     [&] {
                       rd.edge_acquire(&wrong_counter);
                       rd.on_access(&space, 0, kF, kWr, "consumer write");
                     }),
                 Error)
        << "run " << run;
  }
}

TEST(RaceDetector, AcqRelChainsThroughCounter) {
  // Two contributors decrement a dependence counter (acq_rel); the final
  // consumer acquires it and must be ordered after both.
  RaceDetector rd;
  int space = 0;
  int counter = 0;
  std::atomic<int> stage{0};
  auto wait_for = [&](int s) {
    while (stage.load(std::memory_order_acquire) < s) {
      std::this_thread::yield();
    }
  };
  std::exception_ptr error;
  std::thread a([&] {
    rd.on_access(&space, 0, kF, kWr, "contributor a");
    rd.edge_acq_rel(&counter);
    stage.store(1, std::memory_order_release);
  });
  std::thread b([&] {
    wait_for(1);
    rd.on_access(&space, 1, kF, kWr, "contributor b");
    rd.edge_acq_rel(&counter);
    stage.store(2, std::memory_order_release);
  });
  std::thread c([&] {
    wait_for(2);
    try {
      rd.edge_acquire(&counter);
      rd.on_access(&space, 0, kF, kWr, "consumer");
      rd.on_access(&space, 1, kF, kWr, "consumer");
    } catch (...) {
      error = std::current_exception();
    }
  });
  a.join();
  b.join();
  c.join();
  EXPECT_FALSE(static_cast<bool>(error));
}

TEST(RaceDetector, BarrierProtocolOrders) {
  // Both participants arrive; the generation's merged clock orders the
  // leaver after every arriver's pre-barrier work.
  RaceDetector rd;
  int space = 0;
  int barrier = 0;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] {
        rd.on_access(&space, 0, kF, kWr, "pre-barrier write");
        rd.barrier_arrive(&barrier, 2);
        // Does not leave yet; the edge must come from the merged clock.
      },
      [&] {
        const std::uint64_t gen = rd.barrier_arrive(&barrier, 2);
        rd.barrier_leave(&barrier, gen);
        rd.on_access(&space, 0, kF, kWr, "post-barrier write");
      }));
}

TEST(RaceDetector, SkippedBarrierDetected) {
  // The second thread runs ahead without arriving at the barrier the
  // first thread synchronized on: no edge, deterministic report.
  for (int run = 0; run < 10; ++run) {
    RaceDetector rd;
    int space = 0;
    int barrier = 0;
    EXPECT_THROW(
        sequenced_on_two_threads(
            [&] {
              rd.on_access(&space, 0, kF, kWr, "pre-barrier write");
              rd.barrier_arrive(&barrier, 2);
            },
            [&] { rd.on_access(&space, 0, kF, kWr, "skipped the barrier"); }),
        Error)
        << "run " << run;
  }
}

TEST(RaceDetector, LockChainOrders) {
  RaceDetector rd;
  int space = 0;
  int lock = 0;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] {
        rd.lock_acquire(&lock);
        rd.on_access(&space, 0, kF, kWr, "locked write a");
        rd.lock_release(&lock);
      },
      [&] {
        rd.lock_acquire(&lock);
        rd.on_access(&space, 0, kF, kWr, "locked write b");
        rd.lock_release(&lock);
      }));
}

TEST(RaceDetector, ChannelMessageOrders) {
  RaceDetector rd;
  int space = 0;
  int channel = 0;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] {
        rd.on_access(&space, 0, kF, kWr, "pre-send write");
        rd.channel_send(&channel);
      },
      [&] {
        rd.channel_recv(&channel);
        rd.on_access(&space, 0, kF, kWr, "post-recv write");
      }));
}

TEST(RaceDetector, ForkJoinOrders) {
  RaceDetector rd;
  int space = 0;
  rd.on_access(&space, 0, kF, kWr, "parent before fork");
  const std::uint64_t token = rd.fork();
  std::thread worker([&] {
    rd.worker_start(token);
    rd.on_access(&space, 0, kF, kWr, "worker write");
    rd.worker_end(token);
  });
  worker.join();
  rd.join(token);
  EXPECT_NO_THROW(rd.on_access(&space, 0, kF, kWr, "parent after join"));
}

TEST(RaceDetector, WorkerWithoutStartConflicts) {
  RaceDetector rd;
  int space = 0;
  rd.on_access(&space, 0, kF, kWr, "parent before fork");
  rd.fork();
  std::exception_ptr error;
  std::thread worker([&] {
    try {
      // Never calls worker_start: no edge from the parent's write.
      rd.on_access(&space, 0, kF, kWr, "rogue worker write");
    } catch (...) {
      error = std::current_exception();
    }
  });
  worker.join();
  EXPECT_TRUE(static_cast<bool>(error));
}

TEST(RaceDetector, ForgetSpaceClearsShadowState) {
  RaceDetector rd;
  int space = 0;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] { rd.on_access(&space, 0, kF, kWr, "old grid write"); },
      [&] {
        rd.forget_space(&space);
        rd.on_access(&space, 0, kF, kWr, "new grid write");
      }));
}

TEST(RaceDetector, ForgetSyncDropsStaleClock) {
  RaceDetector rd;
  int space = 0;
  int var = 0;
  EXPECT_THROW(sequenced_on_two_threads(
                   [&] {
                     rd.on_access(&space, 0, kF, kWr, "producer write");
                     rd.edge_release(&var);
                     rd.forget_sync(&var);
                   },
                   [&] {
                     // The released clock is gone; this acquire is a no-op.
                     rd.edge_acquire(&var);
                     rd.on_access(&space, 0, kF, kWr, "consumer write");
                   }),
               Error);
}

TEST(RaceDetector, ReportNamesBothAccessesAndContexts) {
  RaceDetector rd;
  int space = 0;
  std::string message;
  sequenced_on_two_threads(
      [&] {
        RaceDetector::set_context("phase one");
        rd.on_access(&space, 2, RaceField::kMacro, kWr, "velocity update");
        RaceDetector::set_context(nullptr);
      },
      [&] {
        RaceDetector::set_context("phase two");
        try {
          rd.on_access(&space, 2, RaceField::kMacro, kRd, "fiber move");
        } catch (const Error& e) {
          message = e.what();
        }
        RaceDetector::set_context(nullptr);
      });
  ASSERT_FALSE(message.empty()) << "detector did not fire";
  EXPECT_NE(message.find("macro"), std::string::npos) << message;
  EXPECT_NE(message.find("location 2"), std::string::npos) << message;
  EXPECT_NE(message.find("velocity update"), std::string::npos) << message;
  EXPECT_NE(message.find("fiber move"), std::string::npos) << message;
  EXPECT_NE(message.find("phase one"), std::string::npos) << message;
  EXPECT_NE(message.find("phase two"), std::string::npos) << message;
}

// --- through the real primitives ------------------------------------------
// The primitives' hooks are compiled in only under LBMIB_RACE_DETECT;
// ScopedRaceDetector gives each test virgin detector state.

#if LBMIB_RACE_DETECT_ENABLED

TEST(RaceDetectorPrimitives, SpinBarrierEstablishesEdge) {
  ScopedRaceDetector sd;
  int space = 0;
  SpinBarrier barrier(2);
  std::exception_ptr error;
  std::thread a([&] {
    race::access(&space, 0, kF, kWr, "pre-barrier write");
    barrier.arrive_and_wait();
  });
  std::thread b([&] {
    barrier.arrive_and_wait();
    try {
      race::access(&space, 0, kF, kWr, "post-barrier write");
    } catch (...) {
      error = std::current_exception();
    }
  });
  a.join();
  b.join();
  EXPECT_FALSE(static_cast<bool>(error));
}

TEST(RaceDetectorPrimitives, SpinLockEstablishesEdge) {
  ScopedRaceDetector sd;
  int space = 0;
  SpinLock lock;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] {
        SpinLockGuard guard(lock);
        race::access(&space, 0, kF, kWr, "locked write a");
      },
      [&] {
        SpinLockGuard guard(lock);
        race::access(&space, 0, kF, kWr, "locked write b");
      }));
}

TEST(RaceDetectorPrimitives, ChannelEstablishesEdge) {
  ScopedRaceDetector sd;
  int space = 0;
  Channel<int> channel;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] {
        race::access(&space, 0, kF, kWr, "pre-send write");
        channel.send(1);
      },
      [&] {
        (void)channel.recv();
        race::access(&space, 0, kF, kWr, "post-recv write");
      }));
}

TEST(RaceDetectorPrimitives, ThreadTeamForkJoinOrders) {
  ScopedRaceDetector sd;
  int space = 0;
  race::access(&space, 0, kF, kWr, "main before run");
  std::atomic<int> failures{0};
  ThreadTeam team(2);
  team.run([&](int) {
    try {
      race::access(&space, 0, kF, kRd, "worker read");
    } catch (const Error&) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  // join() must order main after both workers' reads.
  EXPECT_NO_THROW(race::access(&space, 0, kF, kWr, "main after run"));
}

// --- injected violations through the real grid hooks ----------------------

TEST(RaceDetectorInjection, ForeignUnlockedWriteDetected) {
  // Thread A writes cube 0's force field under the owner's lock; thread B
  // bypasses the lock. Must fire on every run.
  for (int run = 0; run < 10; ++run) {
    ScopedRaceDetector sd;
    CubeGrid grid(8, 8, 8, 4);
    SpinLock owner_lock;
    EXPECT_THROW(sequenced_on_two_threads(
                     [&] {
                       SpinLockGuard guard(owner_lock);
                       grid.add_force_locked(owner_lock, 0, 0, 0,
                                             {1e-5, 0.0, 0.0});
                     },
                     [&] { grid.add_force(0, 0, {1e-5, 0.0, 0.0}); }),
                 Error)
        << "run " << run;
  }
}

TEST(RaceDetectorInjection, PrematureBufferSwapDetected) {
  // Thread A streams cube 0 into df_new; thread B swaps the buffers
  // without waiting for the update barrier. The swap is modeled as an
  // exclusive write to every location of both df roles, so it conflicts
  // with A's un-ordered push.
  for (int run = 0; run < 10; ++run) {
    ScopedRaceDetector sd;
    CubeGrid grid(8, 8, 8, 4);
    EXPECT_THROW(
        sequenced_on_two_threads([&] { cube_collide_stream(grid, 0.8, 0); },
                                 [&] { grid.swap_df_buffers(); }),
        Error)
        << "run " << run;
  }
}

TEST(RaceDetectorInjection, OrderedSwapIsClean) {
  // The same schedule with a release/acquire edge (as the update barrier
  // provides in the solvers) is silent.
  ScopedRaceDetector sd;
  CubeGrid grid(8, 8, 8, 4);
  int edge = 0;
  EXPECT_NO_THROW(sequenced_on_two_threads(
      [&] {
        cube_collide_stream(grid, 0.8, 0);
        race::edge_release(&edge);
      },
      [&] {
        race::edge_acquire(&edge);
        grid.swap_df_buffers();
      }));
}

TEST(RaceDetectorInjection, SkippedUpdateBarrierDetected) {
  // Thread A streams cube 1, pushing into every neighbour's df_new —
  // including cube 0's. Thread B updates cube 0's velocity from df_new
  // without waiting for the stream barrier: unordered scatter vs read.
  for (int run = 0; run < 10; ++run) {
    ScopedRaceDetector sd;
    CubeGrid grid(8, 8, 8, 4);
    EXPECT_THROW(
        sequenced_on_two_threads([&] { cube_stream(grid, 1); },
                                 [&] { cube_update_velocity(grid, 0); }),
        Error)
        << "run " << run;
  }
}

#else

TEST(RaceDetectorPrimitives, DISABLED_RequiresLbmibRaceDetectBuild) {
  GTEST_SKIP() << "rebuild with -DLBMIB_RACE_DETECT=ON to exercise the "
                  "primitive and grid hooks";
}

#endif  // LBMIB_RACE_DETECT_ENABLED

}  // namespace
}  // namespace lbmib
