#include <gtest/gtest.h>

#include <algorithm>

#include "parallel/numa_model.hpp"

namespace lbmib {
namespace {

TEST(NumaModel, ThogMatchesTableIII) {
  const MachineTopology t = thog_topology();
  EXPECT_EQ(t.num_sockets, 4);
  EXPECT_EQ(t.cores_per_socket, 16);
  EXPECT_EQ(t.total_cores(), 64);
  EXPECT_EQ(t.numa_nodes, 8);
  EXPECT_EQ(t.cores_per_numa_node, 8);
  EXPECT_EQ(t.memory_per_numa_node_bytes, Size{32} << 30);
  EXPECT_EQ(t.l1.size_bytes, Size{16} << 10);
  EXPECT_EQ(t.l2.size_bytes, Size{2} << 20);
  EXPECT_EQ(t.l2.cores_sharing, 2);
  EXPECT_EQ(t.l3.size_bytes, Size{12} << 20);
  EXPECT_EQ(t.l3.cores_sharing, 8);
}

TEST(NumaModel, ThogDistanceMatchesTableIV) {
  // Table IV, transcribed:
  const int expected[8][8] = {
      {10, 16, 16, 22, 16, 22, 16, 22}, {16, 10, 22, 16, 22, 16, 22, 16},
      {16, 22, 10, 16, 16, 22, 16, 22}, {22, 16, 16, 10, 22, 16, 22, 16},
      {16, 22, 16, 22, 10, 16, 16, 22}, {22, 16, 22, 16, 16, 10, 22, 16},
      {16, 22, 16, 22, 16, 22, 10, 16}, {22, 16, 22, 16, 22, 16, 16, 10}};
  const MachineTopology t = thog_topology();
  ASSERT_EQ(t.distance.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(t.distance[static_cast<Size>(i)].size(), 8u);
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(t.distance[static_cast<Size>(i)][static_cast<Size>(j)],
                expected[i][j])
          << "node " << i << " -> " << j;
    }
  }
}

TEST(NumaModel, DistanceIsSymmetricWithLocalMinimum) {
  const MachineTopology t = thog_topology();
  const int n = t.numa_nodes;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(t.distance[static_cast<Size>(i)][static_cast<Size>(j)],
                t.distance[static_cast<Size>(j)][static_cast<Size>(i)]);
      if (i != j) {
        EXPECT_GT(t.distance[static_cast<Size>(i)][static_cast<Size>(j)],
                  t.distance[static_cast<Size>(i)][static_cast<Size>(i)]);
      }
    }
  }
}

TEST(NumaModel, RemoteAccessUpTo2p2xLocal) {
  // "the time to access a remote NUMA memory can be 2.2 times longer".
  const MachineTopology t = thog_topology();
  int max_distance = 0;
  for (const auto& row : t.distance) {
    for (int v : row) max_distance = std::max(max_distance, v);
  }
  EXPECT_EQ(max_distance, 22);  // 2.2 x local(10)
}

TEST(NumaModel, NodeOfCore) {
  const MachineTopology t = thog_topology();
  EXPECT_EQ(t.node_of_core(0), 0);
  EXPECT_EQ(t.node_of_core(7), 0);
  EXPECT_EQ(t.node_of_core(8), 1);
  EXPECT_EQ(t.node_of_core(63), 7);
}

TEST(NumaModel, DescribeMentionsKeyFacts) {
  const std::string d = thog_topology().describe();
  EXPECT_NE(d.find("AMD Opteron 6380"), std::string::npos);
  EXPECT_NE(d.find("16 KB"), std::string::npos);
  EXPECT_NE(d.find("2 MB"), std::string::npos);
  EXPECT_NE(d.find("12 MB"), std::string::npos);
  EXPECT_NE(d.find("32 GB"), std::string::npos);
}

TEST(NumaModel, DistanceTableRendering) {
  const std::string table = thog_topology().distance_table();
  EXPECT_NE(table.find("10"), std::string::npos);
  EXPECT_NE(table.find("22"), std::string::npos);
  // 8 data rows + header
  EXPECT_EQ(static_cast<int>(std::count(table.begin(), table.end(), '\n')),
            9);
}

TEST(NumaModel, AbuDhabiMatchesSectionIIID) {
  // "two AMD Opteron 16-core Abu Dhabi 2.9GHz CPUs and memory of 64 GB"
  const MachineTopology t = abu_dhabi_topology();
  EXPECT_EQ(t.num_sockets, 2);
  EXPECT_EQ(t.total_cores(), 32);
  EXPECT_EQ(static_cast<long long>(t.numa_nodes) *
                static_cast<long long>(t.memory_per_numa_node_bytes),
            64LL << 30);
}

}  // namespace
}  // namespace lbmib
