#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "parallel/barrier.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

/// Property: after the i-th barrier, every thread observes every other
/// thread's i-th phase increment. Run for several generations and thread
/// counts against both barrier implementations.
class BarrierTest : public ::testing::TestWithParam<
                        std::tuple<BarrierKind, int /*threads*/>> {
 protected:
  std::unique_ptr<Barrier> make(int threads) {
    if (std::get<0>(GetParam()) == BarrierKind::kSpin) {
      return std::make_unique<SpinBarrier>(threads);
    }
    return std::make_unique<BlockingBarrier>(threads);
  }
};

TEST_P(BarrierTest, PhasesStayInLockstep) {
  const int threads = std::get<1>(GetParam());
  auto barrier = make(threads);
  constexpr int kGenerations = 50;
  std::vector<std::atomic<int>> phase(static_cast<Size>(threads));
  for (auto& p : phase) p.store(0);

  ThreadTeam team(threads);
  std::atomic<int> violations{0};
  team.run([&](int tid) {
    for (int gen = 0; gen < kGenerations; ++gen) {
      phase[static_cast<Size>(tid)].fetch_add(1);
      barrier->arrive_and_wait();
      // Everyone must have completed `gen + 1` phases by now.
      for (int t = 0; t < threads; ++t) {
        if (phase[static_cast<Size>(t)].load() < gen + 1) {
          violations.fetch_add(1);
        }
      }
      barrier->arrive_and_wait();
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(BarrierTest, SingleThreadNeverBlocks) {
  auto barrier = make(1);
  for (int i = 0; i < 100; ++i) barrier->arrive_and_wait();
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BarrierTest,
    ::testing::Combine(::testing::Values(BarrierKind::kSpin,
                                         BarrierKind::kBlocking),
                       ::testing::Values(1, 2, 3, 4, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == BarrierKind::kSpin
                             ? "Spin"
                             : "Blocking") +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(Barrier, RejectsZeroThreads) {
  EXPECT_THROW(SpinBarrier(0), Error);
  EXPECT_THROW(BlockingBarrier(0), Error);
}

TEST(Barrier, ReusableAcrossManyGenerations) {
  // Regression guard: a generation-counting barrier must not wrap or stall
  // after many uses.
  SpinBarrier barrier(2);
  std::atomic<long> counter{0};
  std::thread other([&] {
    for (int i = 0; i < 2000; ++i) {
      counter.fetch_add(1);
      barrier.arrive_and_wait();
    }
  });
  for (int i = 0; i < 2000; ++i) {
    barrier.arrive_and_wait();
    EXPECT_GE(counter.load(), i + 1);
  }
  other.join();
  EXPECT_EQ(counter.load(), 2000);
}

}  // namespace
}  // namespace lbmib
