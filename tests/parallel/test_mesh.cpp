#include <gtest/gtest.h>

#include "common/error.hpp"
#include "parallel/mesh.hpp"

namespace lbmib {
namespace {

TEST(ThreadMesh, SizeIsProduct) {
  ThreadMesh m{2, 3, 4};
  EXPECT_EQ(m.size(), 24);
}

TEST(ThreadMesh, ThreadIdAndCoordinatesAreInverse) {
  ThreadMesh m{3, 2, 4};
  for (int i = 0; i < m.p; ++i) {
    for (int j = 0; j < m.q; ++j) {
      for (int k = 0; k < m.r; ++k) {
        const int tid = m.thread_id(i, j, k);
        const auto c = m.coordinates(tid);
        EXPECT_EQ(c[0], i);
        EXPECT_EQ(c[1], j);
        EXPECT_EQ(c[2], k);
      }
    }
  }
}

TEST(ThreadMesh, ThreadIdsAreDenseAndUnique) {
  ThreadMesh m{2, 2, 2};
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int k = 0; k < 2; ++k) {
        const int tid = m.thread_id(i, j, k);
        ASSERT_GE(tid, 0);
        ASSERT_LT(tid, 8);
        EXPECT_FALSE(seen[static_cast<Size>(tid)]);
        seen[static_cast<Size>(tid)] = true;
      }
    }
  }
}

class BalancedMeshTest : public ::testing::TestWithParam<int> {};

TEST_P(BalancedMeshTest, FactorsExactly) {
  const int n = GetParam();
  const ThreadMesh m = balanced_mesh(n);
  EXPECT_EQ(m.size(), n);
  EXPECT_GE(m.p, m.q);
  EXPECT_GE(m.q, m.r);
  EXPECT_GE(m.r, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BalancedMeshTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16, 17, 24,
                                           32, 60, 64, 97, 128));

TEST(BalancedMesh, EightThreadsIsTwoCubed) {
  // The paper's example: 8 threads laid out as a 2x2x2 mesh.
  const ThreadMesh m = balanced_mesh(8);
  EXPECT_EQ(m.p, 2);
  EXPECT_EQ(m.q, 2);
  EXPECT_EQ(m.r, 2);
}

TEST(BalancedMesh, SixtyFourThreadsIsFourCubed) {
  const ThreadMesh m = balanced_mesh(64);
  EXPECT_EQ(m.p, 4);
  EXPECT_EQ(m.q, 4);
  EXPECT_EQ(m.r, 4);
}

TEST(BalancedMesh, PrimeDegeneratesToLine) {
  const ThreadMesh m = balanced_mesh(7);
  EXPECT_EQ(m.p, 7);
  EXPECT_EQ(m.q, 1);
  EXPECT_EQ(m.r, 1);
}

TEST(BalancedMesh, RejectsZero) { EXPECT_THROW(balanced_mesh(0), Error); }

TEST(FittedMesh, PrefersFittingFactorization) {
  // 8 threads on a 8x2x2-cube grid: 2x2x2 fits; so does 8x1x1. Both fit;
  // the balanced one must win.
  const ThreadMesh m = fitted_mesh(8, 8, 2, 2);
  EXPECT_EQ(m.size(), 8);
  EXPECT_LE(m.p, 8);
  EXPECT_LE(m.q, 2);
  EXPECT_LE(m.r, 2);
}

TEST(FittedMesh, ElongatedGridGetsElongatedMesh) {
  // 4 threads on a 16x1x1 cube grid: only 4x1x1 fits.
  const ThreadMesh m = fitted_mesh(4, 16, 1, 1);
  EXPECT_EQ(m.p, 4);
  EXPECT_EQ(m.q, 1);
  EXPECT_EQ(m.r, 1);
}

TEST(FittedMesh, FallsBackWhenNothingFits) {
  // More threads than cubes: still factors to the full thread count.
  const ThreadMesh m = fitted_mesh(16, 2, 2, 2);
  EXPECT_EQ(m.size(), 16);
}

}  // namespace
}  // namespace lbmib
