#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <mutex>

#include "common/error.hpp"
#include "common/types.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

TEST(ThreadTeam, RunsEveryTidExactlyOnce) {
  constexpr int kThreads = 6;
  ThreadTeam team(kThreads);
  std::mutex mutex;
  std::multiset<int> seen;
  team.run([&](int tid) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(tid);
  });
  EXPECT_EQ(seen.size(), static_cast<Size>(kThreads));
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(seen.count(t), 1u);
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  ThreadTeam team(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  team.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    body_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(body_thread, caller);
}

TEST(ThreadTeam, PropagatesWorkerException) {
  ThreadTeam team(4);
  EXPECT_THROW(team.run([&](int tid) {
                 if (tid == 2) throw Error("worker failure");
               }),
               Error);
}

TEST(ThreadTeam, PropagatesMainThreadException) {
  ThreadTeam team(3);
  EXPECT_THROW(team.run([&](int tid) {
                 if (tid == 0) throw Error("main failure");
               }),
               Error);
}

TEST(ThreadTeam, JoinsAllThreadsEvenOnException) {
  ThreadTeam team(4);
  std::atomic<int> completed{0};
  try {
    team.run([&](int tid) {
      if (tid == 1) throw Error("bang");
      completed.fetch_add(1);
    });
  } catch (const Error&) {
  }
  // All other workers finished and were joined before the rethrow.
  EXPECT_EQ(completed.load(), 3);
}

TEST(ThreadTeam, RejectsZeroThreads) { EXPECT_THROW(ThreadTeam(0), Error); }

TEST(ThreadTeam, Reusable) {
  ThreadTeam team(3);
  std::atomic<int> runs{0};
  for (int i = 0; i < 5; ++i) {
    team.run([&](int) { runs.fetch_add(1); });
  }
  EXPECT_EQ(runs.load(), 15);
}

}  // namespace
}  // namespace lbmib
