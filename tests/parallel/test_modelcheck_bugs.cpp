// Injected protocol bugs that exploration MUST find, each with a
// replayable failing schedule: (1) a worker that skips its barrier
// arrive, (2) a producer that drops the wakeup after publishing,
// (3) a premature parity buffer swap racing a kernel access, and
// (4) a cancel protocol with a non-atomic claim that elects two
// winners. These are the acceptance-criteria detectors for the model
// checker itself: if a refactor of the engine stops finding any of
// them, this file goes red before a real regression ships.
#include "parallel/modelcheck.hpp"

#include <gtest/gtest.h>

#if LBMIB_MODELCHECK_ENABLED

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "cube/cube_grid.hpp"
#include "parallel/barrier.hpp"
#include "parallel/race_detector.hpp"

namespace lbmib {
namespace {

mc::Options opts(const char* name) {
  mc::Options options;
  options.name = name;
  return options;
}

void expect_found_and_replayable(const mc::Result& result,
                                 const mc::ModelFactory& model,
                                 const char* name) {
  ASSERT_FALSE(result.ok) << "bug not found by exploration";
  ASSERT_FALSE(result.failing_schedule.empty());
  ASSERT_FALSE(result.trace.empty());
  const mc::Result replayed =
      mc::replay(opts(name), model, result.failing_schedule);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.error, result.error);
  EXPECT_EQ(replayed.trace, result.trace);
}

// Bug 1: one participant of a two-party barrier never arrives. The
// partner parks forever; the engine reports a structural deadlock
// (every schedule fails — the bug is unconditional).
mc::ModelFactory skipped_barrier_arrive_model() {
  return [] {
    auto barrier = std::make_shared<SpinBarrier>(2);
    std::vector<mc::ThreadBody> threads;
    threads.push_back([barrier] { barrier->arrive_and_wait(); });
    threads.push_back([] {
      // BUG: supposed to arrive; yields and exits instead.
      mc::sched_point(mc::Op::kYield, nullptr);
    });
    return threads;
  };
}

TEST(McBugs, SkippedBarrierArriveDeadlocks) {
  const mc::ModelFactory model = skipped_barrier_arrive_model();
  const mc::Result result = mc::explore(opts("skip-arrive"), model);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("deadlock"), std::string::npos) << result.error;
  expect_found_and_replayable(result, model, "skip-arrive");
}

// The deterministic-replay acceptance test: serialize the failing
// schedule to its wire form, parse it back, and replay twice. Both
// replays must reproduce the exploration's failure report and event
// trace byte-for-byte.
TEST(McBugs, FailingScheduleReplaysByteForByte) {
  const mc::ModelFactory model = skipped_barrier_arrive_model();
  const mc::Result explored = mc::explore(opts("replay-det"), model);
  ASSERT_FALSE(explored.ok);

  const std::string wire = explored.failing_schedule.serialize();
  const mc::Schedule parsed = mc::Schedule::parse(wire);
  EXPECT_EQ(parsed.choices, explored.failing_schedule.choices);

  const mc::Result first = mc::replay(opts("replay-det"), model, parsed);
  const mc::Result second = mc::replay(opts("replay-det"), model, parsed);
  EXPECT_FALSE(first.ok);
  EXPECT_EQ(first.error, explored.error);
  EXPECT_EQ(first.trace, explored.trace);
  EXPECT_EQ(second.error, first.error);
  EXPECT_EQ(second.trace, first.trace);
}

// Bug 2: a flag-based handoff where the producer stores the flag but
// forgets to notify. In the consumer-first interleaving the consumer
// parks before the store and nothing ever wakes it — a lost wakeup,
// surfaced as a deadlock in exactly those schedules. (The producer-first
// schedules pass, so this also checks that exploration reaches the bad
// ordering rather than stopping at the first clean one.)
mc::ModelFactory dropped_wakeup_model() {
  return [] {
    auto flag = std::make_shared<std::atomic<int>>(0);
    std::vector<mc::ThreadBody> threads;
    threads.push_back([flag] {
      mc::sched_point(mc::Op::kAccess, flag.get());
      flag->store(1, std::memory_order_release);
      // BUG: missing mc::notify(flag.get()) — the wakeup is dropped.
    });
    threads.push_back([flag] {
      mc::sched_point(mc::Op::kAccess, flag.get());
      mc::wait_until(flag.get(), [flag] {
        return flag->load(std::memory_order_acquire) == 1;
      });
    });
    return threads;
  };
}

TEST(McBugs, DroppedChannelWakeupFoundAsDeadlock) {
  const mc::ModelFactory model = dropped_wakeup_model();
  const mc::Result result = mc::explore(opts("lost-wakeup"), model);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("deadlock"), std::string::npos) << result.error;
  expect_found_and_replayable(result, model, "lost-wakeup");
}

// Bug 3: the parity swap runs without the barrier that orders it after
// the kernel writes. The swap models an exclusive write to both df
// roles, so the schedule where it overlaps the kernel access trips the
// happens-before race detector running under the exploration.
mc::ModelFactory premature_parity_swap_model() {
  return [] {
    auto grid = std::make_shared<CubeGrid>(8, 4, 4, 4);
    std::vector<mc::ThreadBody> threads;
    threads.push_back([grid] {
      mc::sched_point(mc::Op::kAccess, grid.get());
      race::access(grid.get(), 0, RaceField::kDf, RaceAccess::kWrite,
                   "kernel write");
    });
    threads.push_back([grid] {
      // BUG: no barrier.arrive_and_wait() before the swap.
      grid->swap_df_buffers();
    });
    return threads;
  };
}

TEST(McBugs, PrematureParitySwapTripsRaceDetector) {
  const mc::ModelFactory model = premature_parity_swap_model();
  const mc::Result result = mc::explore(opts("early-swap"), model);
  ASSERT_FALSE(result.ok);
  // The race detector reports the conflicting accesses by field role.
  EXPECT_NE(result.error.find("race"), std::string::npos) << result.error;
  expect_found_and_replayable(result, model, "early-swap");
}

// Bug 4: a broken CancelToken-style claim that checks then sets a plain
// flag with a schedule point in between — the textbook lost-update
// window. Two racing cancellers can both observe "unclaimed" and both
// win; the model asserts at most one winner, which some interleaving
// violates. (The clean claim-once model over the REAL CancelToken lives
// in test_modelcheck_models.cpp.)
mc::ModelFactory double_claim_model() {
  return [] {
    struct BadToken {
      bool claimed = false;
      std::atomic<int> winners{0};
    };
    auto bad = std::make_shared<BadToken>();
    std::vector<mc::ThreadBody> threads;
    threads.push_back([bad] {
      auto cancel = [bad] {
        mc::sched_point(mc::Op::kTokenClaim, bad.get());
        if (!bad->claimed) {
          // BUG: check and set are separate steps, not an atomic
          // exchange like the real CancelToken's claimed_.exchange().
          mc::sched_point(mc::Op::kTokenClaim, bad.get());
          bad->claimed = true;
          bad->winners.fetch_add(1);
        }
      };
      const int first = mc::spawn_thread(cancel);
      const int second = mc::spawn_thread(cancel);
      mc::join_thread(first);
      mc::join_thread(second);
      mc::check(bad->winners.load() <= 1,
                "claim-once protocol elected two winners");
    });
    return threads;
  };
}

TEST(McBugs, DoubleCancelClaimFoundByExploration) {
  const mc::ModelFactory model = double_claim_model();
  const mc::Result result = mc::explore(opts("double-claim"), model);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("two winners"), std::string::npos)
      << result.error;
  expect_found_and_replayable(result, model, "double-claim");
}

// A preemption bound of 0 (no preemptions at all) can still find the
// unconditional barrier bug: bounding trades completeness for speed,
// not soundness on bugs reachable without preemption.
TEST(McBugs, BoundedSearchStillFindsUnconditionalBug) {
  mc::Options bounded = opts("skip-arrive-bound");
  bounded.preemption_bound = 0;
  const mc::Result result =
      mc::explore(bounded, skipped_barrier_arrive_model());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("deadlock"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace lbmib

#else  // !LBMIB_MODELCHECK_ENABLED

TEST(McBugs, RequiresModelcheckBuild) {
  GTEST_SKIP() << "built without LBMIB_MODELCHECK";
}

#endif
