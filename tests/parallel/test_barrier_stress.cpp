// Barrier stress tests: N threads x M generations with randomized sleeps
// injected before and after arrival, asserting no lost wakeups and no
// generation skew. Designed to run under ThreadSanitizer
// (scripts/run_sanitized_tests.sh thread): the sleeps shake out
// interleavings where the last arrival resets the barrier while earlier
// generations are still draining — the classic lost-wakeup window of
// centralized barriers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "parallel/barrier.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

class BarrierStressTest
    : public ::testing::TestWithParam<std::tuple<BarrierKind, int>> {
 protected:
  std::unique_ptr<Barrier> make(int threads) {
    if (std::get<0>(GetParam()) == BarrierKind::kSpin) {
      return std::make_unique<SpinBarrier>(threads);
    }
    return std::make_unique<BlockingBarrier>(threads);
  }
};

TEST_P(BarrierStressTest, RandomizedSleepsLoseNoWakeups) {
  const int threads = std::get<1>(GetParam());
  auto barrier = make(threads);
  constexpr int kGenerations = 120;

  // arrivals only ever grows, so "arrivals >= threads * (gen + 1) after
  // the gen-th barrier" is exactly the no-lost-wakeup property: had any
  // thread been released early, some increment would be missing.
  std::atomic<long> arrivals{0};
  std::atomic<int> violations{0};

  ThreadTeam team(threads);
  team.run([&](int tid) {
    SplitMix64 rng(0xB377 + static_cast<std::uint64_t>(tid) * 7919);
    for (int gen = 0; gen < kGenerations; ++gen) {
      // Sleep on a random ~quarter of iterations so arrival order and
      // timing differ every generation (and between the two barrier
      // implementations' fast/slow paths).
      if (rng.next_below(4) == 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.next_below(200)));
      }
      arrivals.fetch_add(1, std::memory_order_relaxed);
      barrier->arrive_and_wait();
      if (arrivals.load(std::memory_order_relaxed) <
          static_cast<long>(threads) * (gen + 1)) {
        violations.fetch_add(1);
      }
      if (rng.next_below(4) == 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.next_below(200)));
      }
    }
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(arrivals.load(), static_cast<long>(threads) * kGenerations);
}

TEST_P(BarrierStressTest, NonAtomicPayloadIsPublishedAcrossGenerations) {
  // The barrier must be a full release/acquire point: plain (non-atomic)
  // writes made before arrival must be visible to every thread after it.
  // Under TSan this doubles as a data-race probe on the barrier's
  // synchronization edges.
  const int threads = std::get<1>(GetParam());
  auto barrier = make(threads);
  constexpr int kGenerations = 60;

  std::vector<long> payload(static_cast<Size>(threads), 0);
  std::atomic<int> violations{0};

  ThreadTeam team(threads);
  team.run([&](int tid) {
    SplitMix64 rng(0xCAFE + static_cast<std::uint64_t>(tid));
    for (int gen = 0; gen < kGenerations; ++gen) {
      payload[static_cast<Size>(tid)] = gen + 1;  // plain write
      if (rng.next_below(8) == 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.next_below(100)));
      }
      barrier->arrive_and_wait();
      for (int t = 0; t < threads; ++t) {
        if (payload[static_cast<Size>(t)] < gen + 1) violations.fetch_add(1);
      }
      barrier->arrive_and_wait();  // keep writers out of the readers' scan
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BarrierStressTest,
    ::testing::Combine(::testing::Values(BarrierKind::kSpin,
                                         BarrierKind::kBlocking),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == BarrierKind::kSpin
                             ? "Spin"
                             : "Blocking") +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(BarrierStress, MixedBarrierInstancesStayIndependent) {
  // The cube solver mixes several barrier instances per thread (step
  // barriers + observer barrier); generations of one must not leak into
  // another.
  constexpr int kThreads = 4;
  SpinBarrier a(kThreads), b(kThreads);
  std::atomic<long> counter{0};
  ThreadTeam team(kThreads);
  team.run([&](int) {
    for (int gen = 0; gen < 100; ++gen) {
      counter.fetch_add(1);
      a.arrive_and_wait();
      counter.fetch_add(1);
      b.arrive_and_wait();
    }
  });
  EXPECT_EQ(counter.load(), 2L * kThreads * 100);
}

}  // namespace
}  // namespace lbmib
