#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "parallel/spinlock.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  long counter = 0;  // deliberately non-atomic: the lock must protect it
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  ThreadTeam team(kThreads);
  team.run([&](int) {
    for (int i = 0; i < kIncrements; ++i) {
      SpinLockGuard guard(lock);
      ++counter;
    }
  });
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(SpinLock, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, SequentialLockUnlockCycles) {
  SpinLock lock;
  for (int i = 0; i < 1000; ++i) {
    lock.lock();
    lock.unlock();
  }
  SUCCEED();
}

TEST(SpinLock, TryLockContention) {
  // Threads race a mix of try_lock and blocking lock. The non-atomic
  // counter must equal the number of successful acquisitions: if a
  // try_lock ever succeeded while the lock was held (or an unlock were
  // mis-ordered), increments would be lost — and under TSan the relaxed
  // spin-load/acquire-exchange pairing documented in spinlock.hpp is
  // checked for real on both the fast and the contended path.
  SpinLock lock;
  long counter = 0;  // guarded by `lock`
  std::atomic<long> acquisitions{0};
  constexpr int kThreads = 4;
  constexpr int kRounds = 4000;
  ThreadTeam team(kThreads);
  team.run([&](int tid) {
    SplitMix64 rng(0x51F0 + static_cast<std::uint64_t>(tid));
    for (int i = 0; i < kRounds; ++i) {
      if (rng.next_below(2) == 0) {
        if (lock.try_lock()) {
          ++counter;
          acquisitions.fetch_add(1, std::memory_order_relaxed);
          lock.unlock();
        }
      } else {
        SpinLockGuard guard(lock);
        ++counter;
        acquisitions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(counter, acquisitions.load());
  EXPECT_GE(acquisitions.load(), static_cast<long>(kThreads) * kRounds / 2);
}

TEST(SpinLock, PublishesNonAtomicPayload) {
  // Release/acquire pairing: a plain write made under the lock must be
  // visible to the next holder.
  SpinLock lock;
  long payload = 0;
  ThreadTeam team(2);
  std::atomic<int> violations{0};
  team.run([&](int) {
    long last_seen = 0;
    for (int i = 0; i < 5000; ++i) {
      SpinLockGuard guard(lock);
      if (payload < last_seen) violations.fetch_add(1);
      last_seen = ++payload;
    }
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(payload, 10000);
}

TEST(SpinLock, GuardReleasesOnScopeExit) {
  SpinLock lock;
  {
    SpinLockGuard guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace lbmib
