#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "parallel/spinlock.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  long counter = 0;  // deliberately non-atomic: the lock must protect it
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  ThreadTeam team(kThreads);
  team.run([&](int) {
    for (int i = 0; i < kIncrements; ++i) {
      SpinLockGuard guard(lock);
      ++counter;
    }
  });
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(SpinLock, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, SequentialLockUnlockCycles) {
  SpinLock lock;
  for (int i = 0; i < 1000; ++i) {
    lock.lock();
    lock.unlock();
  }
  SUCCEED();
}

TEST(SpinLock, GuardReleasesOnScopeExit) {
  SpinLock lock;
  {
    SpinLockGuard guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace lbmib
