#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "parallel/communicator.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.send(3);
  EXPECT_EQ(ch.recv(), 1);
  EXPECT_EQ(ch.recv(), 2);
  EXPECT_EQ(ch.recv(), 3);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, RecvBlocksUntilSend) {
  Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send(42);
  });
  EXPECT_EQ(ch.recv(), 42);  // blocks until the producer delivers
  producer.join();
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel<int> ch;
  constexpr int kProducers = 4, kEach = 500;
  ThreadTeam team(kProducers);
  std::thread consumer([&] {
    long sum = 0;
    for (int i = 0; i < kProducers * kEach; ++i) sum += ch.recv();
    EXPECT_EQ(sum, static_cast<long>(kProducers) * kEach);
  });
  team.run([&](int) {
    for (int i = 0; i < kEach; ++i) ch.send(1);
  });
  consumer.join();
}

TEST(Communicator, PointToPoint) {
  Communicator comm(3);
  comm.send(0, 2, Message{7, {1.0, 2.0}});
  const Message m = comm.recv(2, 0, 7);
  EXPECT_EQ(m.tag, 7);
  ASSERT_EQ(m.data.size(), 2u);
  EXPECT_EQ(m.data[0], 1.0);
}

TEST(Communicator, SelfSendWorks) {
  Communicator comm(1);
  comm.send(0, 0, Message{1, {3.5}});
  EXPECT_EQ(comm.recv(0, 0, 1).data[0], 3.5);
}

TEST(Communicator, TagMismatchThrows) {
  Communicator comm(2);
  comm.send(0, 1, Message{5, {}});
  EXPECT_THROW(comm.recv(1, 0, 6), Error);
}

TEST(Communicator, PairwiseChannelsAreIndependent) {
  Communicator comm(2);
  comm.send(0, 1, Message{1, {10.0}});
  comm.send(1, 0, Message{2, {20.0}});
  EXPECT_EQ(comm.recv(0, 1, 2).data[0], 20.0);
  EXPECT_EQ(comm.recv(1, 0, 1).data[0], 10.0);
}

TEST(Communicator, AllreduceSumsAcrossRanks) {
  constexpr int kRanks = 4;
  Communicator comm(kRanks);
  ThreadTeam team(kRanks);
  team.run([&](int rank) {
    std::vector<Real> partial = {static_cast<Real>(rank),
                                 static_cast<Real>(2 * rank)};
    const std::vector<Real> total =
        comm.allreduce_sum(rank, std::move(partial), 9);
    ASSERT_EQ(total.size(), 2u);
    EXPECT_DOUBLE_EQ(total[0], 0 + 1 + 2 + 3);
    EXPECT_DOUBLE_EQ(total[1], 2 * (0 + 1 + 2 + 3));
  });
}

TEST(Communicator, AllreduceSingleRankIsIdentity) {
  Communicator comm(1);
  const auto total = comm.allreduce_sum(0, {1.5, -2.5}, 3);
  EXPECT_EQ(total[0], 1.5);
  EXPECT_EQ(total[1], -2.5);
}

TEST(Communicator, AllreduceRepeatedCollectives) {
  constexpr int kRanks = 3;
  Communicator comm(kRanks);
  ThreadTeam team(kRanks);
  team.run([&](int rank) {
    for (int round = 0; round < 20; ++round) {
      const auto total = comm.allreduce_sum(
          rank, {static_cast<Real>(round)}, 4);
      EXPECT_DOUBLE_EQ(total[0], 3.0 * round);
    }
  });
}

}  // namespace
}  // namespace lbmib
