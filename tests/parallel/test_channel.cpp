#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "parallel/cancel.hpp"
#include "parallel/chaos.hpp"
#include "parallel/communicator.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.send(3);
  EXPECT_EQ(ch.recv(), 1);
  EXPECT_EQ(ch.recv(), 2);
  EXPECT_EQ(ch.recv(), 3);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, RecvBlocksUntilSend) {
  Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send(42);
  });
  EXPECT_EQ(ch.recv(), 42);  // blocks until the producer delivers
  producer.join();
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel<int> ch;
  constexpr int kProducers = 4, kEach = 500;
  ThreadTeam team(kProducers);
  std::thread consumer([&] {
    long sum = 0;
    for (int i = 0; i < kProducers * kEach; ++i) sum += ch.recv();
    EXPECT_EQ(sum, static_cast<long>(kProducers) * kEach);
  });
  team.run([&](int) {
    for (int i = 0; i < kEach; ++i) ch.send(1);
  });
  consumer.join();
}

TEST(Channel, TryRecvReturnsNulloptWhenEmpty) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(5);
  const std::optional<int> got = ch.try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 5);
  EXPECT_FALSE(ch.try_recv().has_value());
}

TEST(Channel, TryRecvKeepsFifoOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(*ch.try_recv(), 1);
  EXPECT_EQ(ch.recv(), 2);
}

TEST(Channel, RecvForTimesOutOnEmptyChannel) {
  Channel<int> ch;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(
      ch.recv_for(std::chrono::milliseconds(50)).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

TEST(Channel, RecvForReturnsDeliveredMessage) {
  Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send(7);
  });
  const std::optional<int> got =
      ch.recv_for(std::chrono::seconds(10));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  producer.join();
}

TEST(Channel, RecvUnblocksOnCancel) {
  CancelToken token;
  CancelScope scope(&token);
  Channel<int> ch;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel("test cancel");
  });
  EXPECT_THROW(ch.recv(), CancelledError);
  canceller.join();
}

TEST(Channel, ChaosDropLosesExactlyOneMessage) {
  chaos::reset();
  Channel<int> ch;
  chaos::arm_message_drop(1);  // drop the second send
  ch.send(1);
  ch.send(2);  // dropped
  ch.send(3);
  EXPECT_EQ(ch.recv(), 1);
  EXPECT_EQ(ch.recv(), 3);
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(chaos::messages_dropped(), 1u);
  chaos::reset();
}

TEST(Channel, ChaosDuplicateDeliversTwice) {
  chaos::reset();
  Channel<int> ch;
  chaos::arm_message_duplicate(0);  // duplicate the first send
  ch.send(9);
  ch.send(10);
  EXPECT_EQ(ch.recv(), 9);
  EXPECT_EQ(ch.recv(), 9);
  EXPECT_EQ(ch.recv(), 10);
  EXPECT_EQ(chaos::messages_duplicated(), 1u);
  chaos::reset();
}

TEST(Communicator, PointToPoint) {
  Communicator comm(3);
  comm.send(0, 2, Message{7, {1.0, 2.0}});
  const Message m = comm.recv(2, 0, 7);
  EXPECT_EQ(m.tag, 7);
  ASSERT_EQ(m.data.size(), 2u);
  EXPECT_EQ(m.data[0], 1.0);
}

TEST(Communicator, SelfSendWorks) {
  Communicator comm(1);
  comm.send(0, 0, Message{1, {3.5}});
  EXPECT_EQ(comm.recv(0, 0, 1).data[0], 3.5);
}

TEST(Communicator, TagMismatchThrows) {
  Communicator comm(2);
  comm.send(0, 1, Message{5, {}});
  EXPECT_THROW(comm.recv(1, 0, 6), Error);
}

TEST(Communicator, PairwiseChannelsAreIndependent) {
  Communicator comm(2);
  comm.send(0, 1, Message{1, {10.0}});
  comm.send(1, 0, Message{2, {20.0}});
  EXPECT_EQ(comm.recv(0, 1, 2).data[0], 20.0);
  EXPECT_EQ(comm.recv(1, 0, 1).data[0], 10.0);
}

TEST(Communicator, AllreduceSumsAcrossRanks) {
  constexpr int kRanks = 4;
  Communicator comm(kRanks);
  ThreadTeam team(kRanks);
  team.run([&](int rank) {
    std::vector<Real> partial = {static_cast<Real>(rank),
                                 static_cast<Real>(2 * rank)};
    const std::vector<Real> total =
        comm.allreduce_sum(rank, std::move(partial), 9);
    ASSERT_EQ(total.size(), 2u);
    EXPECT_DOUBLE_EQ(total[0], 0 + 1 + 2 + 3);
    EXPECT_DOUBLE_EQ(total[1], 2 * (0 + 1 + 2 + 3));
  });
}

TEST(Communicator, AllreduceSingleRankIsIdentity) {
  Communicator comm(1);
  const auto total = comm.allreduce_sum(0, {1.5, -2.5}, 3);
  EXPECT_EQ(total[0], 1.5);
  EXPECT_EQ(total[1], -2.5);
}

TEST(Communicator, AllreduceRepeatedCollectives) {
  constexpr int kRanks = 3;
  Communicator comm(kRanks);
  ThreadTeam team(kRanks);
  team.run([&](int rank) {
    for (int round = 0; round < 20; ++round) {
      const auto total = comm.allreduce_sum(
          rank, {static_cast<Real>(round)}, 4);
      EXPECT_DOUBLE_EQ(total[0], 3.0 * round);
    }
  });
}

}  // namespace
}  // namespace lbmib
