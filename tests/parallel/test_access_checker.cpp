#include <gtest/gtest.h>

#include <atomic>

#include "common/error.hpp"
#include "core/cube_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"
#include "cube/cube_grid.hpp"
#include "cube/cube_kernels.hpp"
#include "parallel/access_checker.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

/// 2 threads x 8 cubes, split in halves: cubes 0-3 -> thread 0,
/// cubes 4-7 -> thread 1.
AccessChecker make_checker() {
  AccessChecker checker(8, 2);
  for (Size c = 0; c < 8; ++c) checker.set_owner(c, c < 4 ? 0 : 1);
  return checker;
}

TEST(AccessChecker, OwnerWritesOwnCubesFreely) {
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 0);
  EXPECT_NO_THROW(checker.check_unlocked_write(0));
  EXPECT_NO_THROW(checker.check_owned_write(2, StepPhase::kSpread));
}

TEST(AccessChecker, UnlockedForeignWriteFires) {
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 1);
  try {
    checker.check_unlocked_write(0);  // cube 0 belongs to thread 0
    FAIL() << "checker did not fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unlocked foreign-cube write"),
              std::string::npos)
        << e.what();
  }
}

TEST(AccessChecker, LockedForeignWriteWithOwnersLockPasses) {
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 1);
  // Thread 1 writes cube 0 holding thread 0's lock, in the spread phase.
  EXPECT_NO_THROW(checker.check_locked_write(0, 0));
}

TEST(AccessChecker, WrongLockFires) {
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 1);
  // Cube 0 is guarded by thread 0's lock; holding one's own lock is not
  // enough.
  EXPECT_THROW(checker.check_locked_write(0, 1), Error);
}

TEST(AccessChecker, LockedWriteOutsideSpreadPhaseFires) {
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 1);
  checker.advance_phase(StepPhase::kCollideStream);
  EXPECT_THROW(checker.check_locked_write(0, 0), Error);
}

TEST(AccessChecker, KernelInWrongPhaseFires) {
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 0);
  // Fresh binding starts in kSpread; a collide-phase kernel must wait for
  // the barrier.
  EXPECT_THROW(checker.check_owned_write(0, StepPhase::kCollideStream),
               Error);
  checker.advance_phase(StepPhase::kCollideStream);
  EXPECT_NO_THROW(checker.check_owned_write(0, StepPhase::kCollideStream));
}

TEST(AccessChecker, BarrierPhaseViolationFires) {
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 0);
  checker.advance_phase(StepPhase::kCollideStream);  // legal successor
  // Re-announcing the same phase means a barrier fired twice.
  try {
    checker.advance_phase(StepPhase::kCollideStream);
    FAIL() << "checker did not fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("barrier phase violation"),
              std::string::npos)
        << e.what();
  }
}

TEST(AccessChecker, SkippedBarrierFires) {
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 0);
  // kSpread -> kUpdate skips the collide+stream barrier.
  EXPECT_THROW(checker.advance_phase(StepPhase::kUpdate), Error);
}

TEST(AccessChecker, SwapOutsideMoveCopyPhaseFires) {
  // The fused pipeline's O(1) buffer swap replaces kernel 9's copy, so it
  // inherits the same slot in the protocol: only the move+copy phase, after
  // the update barrier has retired every read of the old df.
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 0);
  EXPECT_THROW(checker.check_swap(), Error);  // kSpread
  checker.advance_phase(StepPhase::kCollideStream);
  EXPECT_THROW(checker.check_swap(), Error);
  checker.advance_phase(StepPhase::kUpdate);
  EXPECT_THROW(checker.check_swap(), Error);
  checker.advance_phase(StepPhase::kMoveCopy);
  EXPECT_NO_THROW(checker.check_swap());
}

TEST(AccessChecker, SwapByUnboundThreadIsExempt) {
  // Sequential paths and tests swap without entering the protocol.
  AccessChecker checker = make_checker();
  EXPECT_NO_THROW(checker.check_swap());
}

TEST(AccessChecker, PhaseCycleWrapsAroundCleanly) {
  AccessChecker checker = make_checker();
  ScopedThreadBind bind(checker, 0);
  for (int step = 0; step < 3; ++step) {
    checker.advance_phase(StepPhase::kCollideStream);
    checker.advance_phase(StepPhase::kUpdate);
    checker.advance_phase(StepPhase::kMoveCopy);
    checker.advance_phase(StepPhase::kSpread);
  }
  EXPECT_EQ(checker.current_phase(), StepPhase::kSpread);
}

TEST(AccessChecker, UnboundThreadsAreExempt) {
  AccessChecker checker = make_checker();
  // No binding: sequential paths and tests may touch any cube.
  EXPECT_NO_THROW(checker.check_unlocked_write(0));
  EXPECT_NO_THROW(checker.check_owned_write(7, StepPhase::kUpdate));
  EXPECT_EQ(checker.bound_thread(), -1);
}

TEST(AccessChecker, BindingIsPerThread) {
  AccessChecker checker = make_checker();
  std::atomic<int> failures{0};
  ThreadTeam team(2);
  team.run([&](int tid) {
    ScopedThreadBind bind(checker, tid);
    // Each worker owns its half and must not touch the other half
    // unlocked.
    const Size own = tid == 0 ? 0 : 4;
    const Size foreign = tid == 0 ? 4 : 0;
    try {
      checker.check_unlocked_write(own);
    } catch (const Error&) {
      failures.fetch_add(1);
    }
    try {
      checker.check_unlocked_write(foreign);
      failures.fetch_add(1);  // should have thrown
    } catch (const Error&) {
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(AccessChecker, RejectsInvalidConfiguration) {
  EXPECT_THROW(AccessChecker(4, 0), Error);
  AccessChecker checker(4, 2);
  EXPECT_THROW(checker.set_owner(4, 0), Error);
  EXPECT_THROW(checker.set_owner(0, 2), Error);
  EXPECT_THROW(checker.bind_thread(2), Error);
}

// --- integration through the real write hooks ----------------------------
// These need the hooks compiled in (cmake -DLBMIB_CHECK_ACCESS=ON); the
// sanitizer script's address leg and the CI matrix build that way.

#if LBMIB_ACCESS_CHECK_ENABLED

/// 8x8x8 grid with 4^3 cubes -> 2x2x2 = 8 cubes, split in halves.
struct CheckedGrid {
  CheckedGrid() : grid(8, 8, 8, 4), checker(grid.num_cubes(), 2) {
    for (Size c = 0; c < grid.num_cubes(); ++c) {
      checker.set_owner(c, c < grid.num_cubes() / 2 ? 0 : 1);
    }
    grid.attach_access_checker(&checker);
  }
  CubeGrid grid;
  AccessChecker checker;
};

TEST(AccessCheckerHooks, AddForceFiresOnUnlockedForeignWrite) {
  CheckedGrid g;
  ScopedThreadBind bind(g.checker, 1);
  EXPECT_THROW(g.grid.add_force(0, 0, {1.0, 0.0, 0.0}), Error);
  // The owner writes the same node freely.
  EXPECT_NO_THROW(g.grid.add_force(7, 0, {1.0, 0.0, 0.0}));
}

TEST(AccessCheckerHooks, AddForceLockedValidatesLockIndex) {
  CheckedGrid g;
  SpinLock locks[2];
  ScopedThreadBind bind(g.checker, 1);
  {
    SpinLockGuard guard(locks[0]);
    EXPECT_NO_THROW(
        g.grid.add_force_locked(locks[0], 0, 0, 0, {1.0, 0.0, 0.0}));
  }
  {
    SpinLockGuard guard(locks[1]);
    // Cube 0 is guarded by lock 0, not lock 1.
    EXPECT_THROW(
        g.grid.add_force_locked(locks[1], 1, 0, 0, {1.0, 0.0, 0.0}),
        Error);
  }
}

TEST(AccessCheckerHooks, KernelFiresOnBarrierPhaseViolation) {
  CheckedGrid g;
  ScopedThreadBind bind(g.checker, 0);
  // Fresh binding is in the spread phase: colliding now means the thread
  // ran past a barrier it never arrived at.
  EXPECT_THROW(cube_collide(g.grid, 0.8, 0), Error);
  g.checker.advance_phase(StepPhase::kCollideStream);
  EXPECT_NO_THROW(cube_collide(g.grid, 0.8, 0));
  // ...and kernels of a *later* phase still fire.
  EXPECT_THROW(cube_update_velocity(g.grid, 0), Error);
}

TEST(AccessCheckerHooks, KernelFiresOnForeignCube) {
  CheckedGrid g;
  ScopedThreadBind bind(g.checker, 0);
  g.checker.advance_phase(StepPhase::kCollideStream);
  EXPECT_THROW(cube_collide(g.grid, 0.8, 7), Error);  // owned by thread 1
}

TEST(AccessCheckerHooks, CheckedCubeSolverRunMatchesSequential) {
  // The full solver must be violation-free under the checker, and the
  // checker must not perturb results.
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  SequentialSolver seq(p);
  seq.run(4);
  p.num_threads = 4;
  CubeSolver cube(p);
  ASSERT_NE(cube.cubes().access_checker(), nullptr);
  EXPECT_NO_THROW(cube.run(4));
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-12);
}

#else

TEST(AccessCheckerHooks, DISABLED_RequiresLbmibCheckAccessBuild) {
  GTEST_SKIP() << "rebuild with -DLBMIB_CHECK_ACCESS=ON to exercise the "
                  "grid/kernel hooks";
}

#endif  // LBMIB_ACCESS_CHECK_ENABLED

}  // namespace
}  // namespace lbmib
