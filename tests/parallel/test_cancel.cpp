#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/watchdog.hpp"
#include "parallel/barrier.hpp"
#include "parallel/cancel.hpp"
#include "parallel/chaos.hpp"
#include "parallel/spinlock.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

TEST(CancelToken, StartsUncancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.cause(), CancelCause::kNone);
  EXPECT_EQ(token.reason(), "");
  EXPECT_NO_THROW(token.throw_if_cancelled());
}

TEST(CancelToken, CancelSetsCauseAndReason) {
  CancelToken token;
  token.cancel("why not", CancelCause::kWatchdog);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.cause(), CancelCause::kWatchdog);
  EXPECT_EQ(token.reason(), "why not");
  try {
    token.throw_if_cancelled("some:wait");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.cause(), CancelCause::kWatchdog);
    EXPECT_NE(std::string(e.what()).find("some:wait"), std::string::npos);
  }
}

TEST(CancelToken, FirstCancelWins) {
  CancelToken token;
  token.cancel("first", CancelCause::kUser);
  token.cancel("second", CancelCause::kError);
  EXPECT_EQ(token.reason(), "first");
  EXPECT_EQ(token.cause(), CancelCause::kUser);
}

TEST(CancelToken, DynamicReasonIsCopied) {
  CancelToken token;
  {
    std::string reason = "transient string";
    token.cancel(reason, CancelCause::kError);
  }
  EXPECT_EQ(token.reason(), "transient string");
}

TEST(CancelToken, ResetRearms) {
  CancelToken token;
  token.cancel("gone", CancelCause::kUser);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.cause(), CancelCause::kNone);
  EXPECT_EQ(token.reason(), "");
  token.cancel("again", CancelCause::kError);
  EXPECT_EQ(token.cause(), CancelCause::kError);
}

TEST(CancelToken, CauseNames) {
  EXPECT_STREQ(cancel_cause_name(CancelCause::kNone), "none");
  EXPECT_STREQ(cancel_cause_name(CancelCause::kUser), "user");
  EXPECT_STREQ(cancel_cause_name(CancelCause::kWatchdog), "watchdog");
  EXPECT_STREQ(cancel_cause_name(CancelCause::kError), "error");
}

TEST(CancelScope, InstallsAndRestores) {
  EXPECT_EQ(CancelToken::current(), nullptr);
  CancelToken outer;
  {
    CancelScope outer_scope(&outer);
    EXPECT_EQ(CancelToken::current(), &outer);
    CancelToken inner;
    {
      CancelScope inner_scope(&inner);
      EXPECT_EQ(CancelToken::current(), &inner);
    }
    EXPECT_EQ(CancelToken::current(), &outer);
  }
  EXPECT_EQ(CancelToken::current(), nullptr);
}

TEST(CancelPoint, NoopWithoutInstalledToken) {
  EXPECT_NO_THROW(cancel_point("anywhere"));
}

TEST(CancelPoint, ThrowsOnceCancelled) {
  CancelToken token;
  CancelScope scope(&token);
  EXPECT_NO_THROW(cancel_point("here"));
  token.cancel("stop");
  EXPECT_THROW(cancel_point("here"), CancelledError);
}

TEST(Cancellation, SpinBarrierUnblocksWaiters) {
  CancelToken token;
  CancelScope scope(&token);
  SpinBarrier barrier(2);
  std::atomic<bool> unwound{false};
  // One thread arrives; its partner never does. The cancel must free it.
  std::thread waiter([&] {
    try {
      barrier.arrive_and_wait();
    } catch (const CancelledError&) {
      unwound.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.cancel("partner is not coming");
  waiter.join();
  EXPECT_TRUE(unwound.load());
}

TEST(Cancellation, BlockingBarrierUnblocksWaiters) {
  CancelToken token;
  CancelScope scope(&token);
  BlockingBarrier barrier(2);
  std::atomic<bool> unwound{false};
  std::thread waiter([&] {
    try {
      barrier.arrive_and_wait();
    } catch (const CancelledError&) {
      unwound.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.cancel("partner is not coming");
  waiter.join();
  EXPECT_TRUE(unwound.load());
}

TEST(Cancellation, ThreadTeamSurfacesWorkerCancel) {
  CancelToken token;
  CancelScope scope(&token);
  SpinBarrier barrier(3);
  ThreadTeam team(3);
  token.cancel("pre-cancelled");
  EXPECT_THROW(team.run([&](int) { barrier.arrive_and_wait(); }),
               CancelledError);
}

TEST(Cancellation, TeamWorkerErrorCancelsSiblings) {
  // One worker throws a plain Error; the team's failure protocol must
  // cancel the token so the siblings parked at the barrier unwind, and
  // the root-cause Error must be the one rethrown.
  CancelToken token;
  CancelScope scope(&token);
  SpinBarrier barrier(4);  // never completed: worker 0 dies first
  ThreadTeam team(4);
  try {
    team.run([&](int tid) {
      if (tid == 0) throw Error("worker zero exploded");
      barrier.arrive_and_wait();
    });
    FAIL() << "expected Error";
  } catch (const CancelledError&) {
    FAIL() << "root cause lost: got the secondary CancelledError";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("worker zero exploded"),
              std::string::npos);
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.cause(), CancelCause::kError);
}

TEST(ProgressBoard, BeatWithoutScopeIsNoop) {
  ProgressBoard& board = ProgressBoard::global();
  EXPECT_FALSE(board.enrolled());
  board.beat("ignored");  // must not crash or create a slot
  EXPECT_FALSE(board.enrolled());
}

TEST(ProgressBoard, ScopeEnrollsAndRetires) {
  ProgressBoard& board = ProgressBoard::global();
  board.clear_retired();
  {
    HeartbeatScope scope("test:alpha", 7);
    EXPECT_TRUE(board.enrolled());
    board.beat("test:beta");
    bool found = false;
    for (const ProgressBoard::ThreadStatus& t : board.snapshot()) {
      if (t.live && t.tid == 7) {
        found = true;
        EXPECT_STREQ(t.what, "test:beta");
        EXPECT_GE(t.beats, 1u);  // enrollment stamps the clock, not beats
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_FALSE(board.enrolled());
  // Retired slot keeps its post-mortem label until cleared.
  bool retired_found = false;
  for (const ProgressBoard::ThreadStatus& t : board.snapshot()) {
    if (!t.live && t.tid == 7) retired_found = true;
  }
  EXPECT_TRUE(retired_found);
  board.clear_retired();
  for (const ProgressBoard::ThreadStatus& t : board.snapshot()) {
    EXPECT_NE(t.tid, 7);
  }
}

TEST(ProgressBoard, OldestLiveAgeTracksStalestThread) {
  ProgressBoard& board = ProgressBoard::global();
  EXPECT_EQ(board.oldest_live_age_ns(ProgressBoard::now_ns()), -1);
  HeartbeatScope scope("test:age");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const std::int64_t age = board.oldest_live_age_ns(ProgressBoard::now_ns());
  EXPECT_GE(age, 20ll * 1000 * 1000);
  board.beat("test:age");
  EXPECT_LT(board.oldest_live_age_ns(ProgressBoard::now_ns()),
            20ll * 1000 * 1000);
}

TEST(Watchdog, IdleBoardNeverTrips) {
  CancelToken token;
  WatchdogConfig config;
  config.deadline_ms = 50;
  Watchdog dog(token, config);
  dog.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  dog.stop();
  EXPECT_EQ(dog.trips(), 0);
  EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, BeatingThreadNeverTrips) {
  CancelToken token;
  WatchdogConfig config;
  config.deadline_ms = 100;
  Watchdog dog(token, config);
  dog.start();
  {
    HeartbeatScope scope("test:busy");
    for (int i = 0; i < 30; ++i) {
      ProgressBoard::global().beat("test:busy");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  dog.stop();
  EXPECT_EQ(dog.trips(), 0);
  EXPECT_FALSE(token.cancelled());
  ProgressBoard::global().clear_retired();
}

TEST(Watchdog, StaleHeartbeatTripsAndReports) {
  CancelToken token;
  WatchdogConfig config;
  config.deadline_ms = 80;
  Watchdog dog(token, config);
  {
    HeartbeatScope scope("test:wedged", 3);
    dog.start();
    // Stop beating: the watchdog must cancel within a few deadlines.
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!token.cancelled() &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  dog.stop();
  ASSERT_TRUE(token.cancelled());
  EXPECT_EQ(token.cause(), CancelCause::kWatchdog);
  EXPECT_EQ(dog.trips(), 1);
  const std::string report = dog.last_report();
  EXPECT_NE(report.find("hang report"), std::string::npos);
  EXPECT_NE(report.find("test:wedged"), std::string::npos);
  EXPECT_NE(report.find("tid 3"), std::string::npos);
  EXPECT_NE(report.find("STUCK"), std::string::npos);
  ProgressBoard::global().clear_retired();
}

TEST(Watchdog, OneTripPerCancellationAndRearmsAfterReset) {
  CancelToken token;
  WatchdogConfig config;
  config.deadline_ms = 60;
  Watchdog dog(token, config);
  HeartbeatScope scope("test:sticky");
  dog.start();
  const auto wait_for_trip = [&](int expected) {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (dog.trips() < expected &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };
  wait_for_trip(1);
  ASSERT_EQ(dog.trips(), 1);
  // Quiet while the token stays cancelled.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(dog.trips(), 1);
  // After a reset the stale slot must NOT instantly re-trip (the re-arm
  // baseline resets), but a continued stall eventually does.
  token.reset();
  wait_for_trip(2);
  EXPECT_EQ(dog.trips(), 2);
  dog.stop();
  token.reset();
}

TEST(Chaos, TimedStallDelaysButCompletes) {
  chaos::reset();
  chaos::StallSpec spec;
  spec.point_substr = "test:stall-here";
  spec.duration_ms = 80;
  chaos::arm_stall(spec);
  const auto t0 = std::chrono::steady_clock::now();
  chaos::sync_point("test:stall-here", 0, 0);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(60));
  EXPECT_EQ(chaos::stalls_fired(), 1);
  // Fire-once: a second visit does not stall again.
  const auto t1 = std::chrono::steady_clock::now();
  chaos::sync_point("test:stall-here", 0, 1);
  EXPECT_LT(std::chrono::steady_clock::now() - t1,
            std::chrono::milliseconds(50));
  chaos::reset();
}

TEST(Chaos, StallMatchesTidAndStep) {
  chaos::reset();
  chaos::StallSpec spec;
  spec.point_substr = "test:selective";
  spec.tid = 2;
  spec.step = 5;
  spec.duration_ms = 10;
  chaos::arm_stall(spec);
  chaos::sync_point("test:selective", 1, 5);  // wrong tid
  chaos::sync_point("test:selective", 2, 4);  // wrong step
  EXPECT_EQ(chaos::stalls_fired(), 0);
  chaos::sync_point("test:selective", 2, 5);
  EXPECT_EQ(chaos::stalls_fired(), 1);
  chaos::reset();
}

TEST(Chaos, PermanentStallUnwindsOnCancel) {
  chaos::reset();
  CancelToken token;
  CancelScope scope(&token);
  chaos::StallSpec spec;
  spec.point_substr = "test:stuck-forever";
  spec.duration_ms = -1;
  chaos::arm_stall(spec);
  std::atomic<bool> unwound{false};
  std::thread victim([&] {
    try {
      chaos::sync_point("test:stuck-forever", 0, 0);
    } catch (const CancelledError&) {
      unwound.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unwound.load());  // genuinely parked
  token.cancel("rescue");
  victim.join();
  EXPECT_TRUE(unwound.load());
  chaos::reset();
}

TEST(Chaos, CheckpointFailuresCountDown) {
  chaos::reset();
  chaos::arm_checkpoint_write_failures(2);
  EXPECT_TRUE(chaos::enabled());
  EXPECT_THROW(chaos::on_checkpoint_write(), Error);
  EXPECT_EQ(chaos::checkpoint_failures_remaining(), 1);
  EXPECT_THROW(chaos::on_checkpoint_write(), Error);
  EXPECT_NO_THROW(chaos::on_checkpoint_write());
  chaos::reset();
  EXPECT_FALSE(chaos::enabled());
}

}  // namespace
}  // namespace lbmib
