// Clean-protocol models for every primitive the checker covers:
// SpinBarrier/BlockingBarrier (generations, poison-on-cancel),
// SpinLock mutual exclusion, Channel (FIFO, try_recv, recv_for,
// lost-wakeup freedom), ThreadTeam fork/join and error-cancel, the
// dataflow dependence-counter/queue-slot handshake, the parity
// buffer-swap protocol, and CancelToken claim-once. Every exploration
// here must pass exhaustively — each one is a bounded proof that no
// interleaving of the modeled configuration deadlocks, races (the PR-4
// detector runs under every schedule) or violates the protocol
// assertion. The deliberately broken counterparts live in
// test_modelcheck_bugs.cpp.
#include "parallel/modelcheck.hpp"

#include <gtest/gtest.h>

#if LBMIB_MODELCHECK_ENABLED

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "cube/cube_grid.hpp"
#include "parallel/barrier.hpp"
#include "parallel/cancel.hpp"
#include "parallel/channel.hpp"
#include "parallel/race_detector.hpp"
#include "parallel/spinlock.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

mc::Options opts(const char* name) {
  mc::Options options;
  options.name = name;
  return options;
}

template <class BarrierT>
mc::Result explore_barrier_generations(const char* name) {
  return mc::explore(opts(name), [] {
    struct State {
      BarrierT barrier{2};
      std::array<int, 2> progress{0, 0};
    };
    auto state = std::make_shared<State>();
    std::vector<mc::ThreadBody> threads;
    for (int tid = 0; tid < 2; ++tid) {
      threads.push_back([state, tid] {
        for (int gen = 1; gen <= 2; ++gen) {
          state->progress[static_cast<std::size_t>(tid)] = gen;
          state->barrier.arrive_and_wait();
          // Leaving generation `gen` proves the partner reached it too.
          mc::check(state->progress[0] >= gen && state->progress[1] >= gen,
                    "barrier released before both threads arrived");
        }
      });
    }
    return threads;
  });
}

TEST(McModels, SpinBarrierTwoGenerationsClean) {
  const mc::Result result =
      explore_barrier_generations<SpinBarrier>("spin-barrier");
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.schedules, 2u);
}

TEST(McModels, BlockingBarrierTwoGenerationsClean) {
  const mc::Result result =
      explore_barrier_generations<BlockingBarrier>("blocking-barrier");
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.schedules, 2u);
}

// Poison protocol: a cancelled barrier wait unwinds with CancelledError
// in EVERY interleaving of canceller vs waiter — whether the cancel
// lands before the arrive (the entry poll throws) or while parked (the
// cancel's wildcard notify wakes the cooperative wait).
TEST(McModels, CancelledBarrierWaitAlwaysUnwinds) {
  const mc::Result result = mc::explore(opts("barrier-cancel"), [] {
    struct State {
      CancelToken token;
      SpinBarrier barrier{2};
    };
    auto state = std::make_shared<State>();
    std::vector<mc::ThreadBody> threads;
    threads.push_back([state] {
      CancelScope scope(&state->token);
      bool unwound = false;
      try {
        state->barrier.arrive_and_wait();
      } catch (const CancelledError&) {
        unwound = true;
      }
      mc::check(unwound, "poisoned barrier wait must throw CancelledError");
    });
    threads.push_back([state] {
      // Never arrives: cancels instead (the partner would block forever
      // without the cancellation).
      state->token.cancel("partner bailed", CancelCause::kUser);
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
}

TEST(McModels, SpinLockMutualExclusionClean) {
  const mc::Result result = mc::explore(opts("spinlock"), [] {
    struct State {
      SpinLock lock;
      int in_critical_section = 0;
    };
    auto state = std::make_shared<State>();
    std::vector<mc::ThreadBody> threads;
    for (int tid = 0; tid < 2; ++tid) {
      threads.push_back([state] {
        state->lock.lock();
        mc::check(state->in_critical_section == 0, "mutual exclusion");
        state->in_critical_section = 1;
        // A schedule point INSIDE the critical section: the checker may
        // try to run the other thread here, which must block on the lock.
        mc::sched_point(mc::Op::kAccess, &state->in_critical_section);
        mc::check(state->in_critical_section == 1, "no intruder");
        state->in_critical_section = 0;
        state->lock.unlock();
      });
    }
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.schedules, 2u);
}

TEST(McModels, SpinLockTryLockNeverBreaksExclusion) {
  const mc::Result result = mc::explore(opts("spinlock-try"), [] {
    struct State {
      SpinLock lock;
      int in_critical_section = 0;
    };
    auto state = std::make_shared<State>();
    std::vector<mc::ThreadBody> threads;
    for (int tid = 0; tid < 2; ++tid) {
      threads.push_back([state] {
        if (!state->lock.try_lock()) return;  // losing is fine
        mc::check(state->in_critical_section == 0, "try_lock exclusion");
        state->in_critical_section = 1;
        mc::sched_point(mc::Op::kAccess, &state->in_critical_section);
        state->in_critical_section = 0;
        state->lock.unlock();
      });
    }
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
}

TEST(McModels, ChannelDeliversInFifoOrder) {
  const mc::Result result = mc::explore(opts("channel-fifo"), [] {
    auto channel = std::make_shared<Channel<int>>();
    std::vector<mc::ThreadBody> threads;
    threads.push_back([channel] {
      channel->send(1);
      channel->send(2);
    });
    threads.push_back([channel] {
      const int first = channel->recv();
      const int second = channel->recv();
      mc::check(first == 1 && second == 2, "FIFO order");
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.schedules, 2u);
}

TEST(McModels, ChannelTryRecvSeesBothOutcomes) {
  const auto outcomes = std::make_shared<std::set<std::string>>();
  const mc::Result result =
      mc::explore(opts("channel-try"), [outcomes] {
        auto channel = std::make_shared<Channel<int>>();
        std::vector<mc::ThreadBody> threads;
        threads.push_back([channel] { channel->send(7); });
        threads.push_back([channel, outcomes] {
          const std::optional<int> probe = channel->try_recv();
          if (probe.has_value()) {
            mc::check(*probe == 7, "probed value");
            outcomes->insert("hit");
          } else {
            outcomes->insert("miss");
            mc::check(channel->recv() == 7, "value after miss");
          }
        });
        return threads;
      });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  // Exploration must drive the probe both before and after the send.
  EXPECT_EQ(outcomes->count("hit"), 1u);
  EXPECT_EQ(outcomes->count("miss"), 1u);
}

// recv_for under the checker: the deadline is an explicit scheduler
// transition, so both the delivery and the timeout outcome must be
// explored regardless of the nominal duration.
TEST(McModels, ChannelRecvForExploresTimeoutAndDelivery) {
  const auto outcomes = std::make_shared<std::set<std::string>>();
  const mc::Result result =
      mc::explore(opts("channel-recv-for"), [outcomes] {
        auto channel = std::make_shared<Channel<int>>();
        std::vector<mc::ThreadBody> threads;
        threads.push_back([channel] { channel->send(42); });
        threads.push_back([channel, outcomes] {
          const std::optional<int> got =
              channel->recv_for(std::chrono::milliseconds(1));
          if (got.has_value()) {
            mc::check(*got == 42, "delivered value");
            outcomes->insert("delivered");
          } else {
            outcomes->insert("timeout");
          }
        });
        return threads;
      });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(outcomes->count("delivered"), 1u);
  EXPECT_EQ(outcomes->count("timeout"), 1u);
}

// Lost-wakeup freedom: two blocking receivers, two messages. If any
// send/recv interleaving could drop a wakeup, some schedule would leave
// a receiver parked forever and the engine would report a deadlock.
TEST(McModels, ChannelNeverLosesAWakeup) {
  const mc::Result result = mc::explore(opts("channel-wakeup"), [] {
    auto channel = std::make_shared<Channel<int>>();
    auto sum = std::make_shared<std::atomic<int>>(0);
    std::vector<mc::ThreadBody> threads;
    threads.push_back([channel] {
      channel->send(1);
      channel->send(2);
    });
    for (int consumer = 0; consumer < 2; ++consumer) {
      threads.push_back(
          [channel, sum] { sum->fetch_add(channel->recv()); });
    }
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
}

TEST(McModels, ThreadTeamForkJoinRunsEveryWorker) {
  const mc::Result result = mc::explore(opts("team-forkjoin"), [] {
    std::vector<mc::ThreadBody> threads;
    threads.push_back([] {
      auto ran = std::make_shared<std::array<int, 2>>();
      ran->fill(0);
      ThreadTeam team(2);
      team.run([ran](int tid) {
        mc::sched_point(mc::Op::kAccess, &(*ran)[static_cast<std::size_t>(tid)]);
        (*ran)[static_cast<std::size_t>(tid)] = 1;
      });
      mc::check((*ran)[0] == 1 && (*ran)[1] == 1,
                "join returned before every worker finished");
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
}

// Error-cancel protocol: when one worker throws, the secondary
// cancellation must unwedge the other worker's barrier wait in every
// interleaving, and join must rethrow the ROOT error, not the
// CancelledError the victim unwound with.
TEST(McModels, ThreadTeamErrorCancelsStuckPartner) {
  const mc::Result result = mc::explore(opts("team-error"), [] {
    std::vector<mc::ThreadBody> threads;
    threads.push_back([] {
      auto token = std::make_shared<CancelToken>();
      CancelScope scope(token.get());
      SpinBarrier barrier(2);
      ThreadTeam team(2);
      bool root_error_surfaced = false;
      try {
        team.run([&barrier](int tid) {
          if (tid == 1) throw Error("injected worker failure");
          // tid 0: waits for a partner that will never arrive; only the
          // error-cancel can release it.
          barrier.arrive_and_wait();
        });
      } catch (const CancelledError&) {
        // wrong exception: root cause must win
      } catch (const Error& e) {
        root_error_surfaced = std::string(e.what()).find(
                                  "injected worker failure") !=
                              std::string::npos;
      }
      mc::check(root_error_surfaced, "join rethrows the root failure");
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
}

// The dataflow handshake in miniature: two producers decrement a
// dependence counter; exactly the last one publishes the queue slot;
// a consumer blocks on the slot. Mirrors the seams in
// core/dataflow_solver.cpp (kEdgeAcqRel on the counter, kEdgeRelease /
// kEdgeAcquire plus notify on the slot) including the race-detector
// edges, so a publish protocol error would surface as a race or a
// deadlock in some schedule.
TEST(McModels, DataflowCounterPublishesExactlyOnce) {
  constexpr std::int64_t kEmpty = -1;
  const mc::Result result = mc::explore(opts("dataflow"), [] {
    struct State {
      std::atomic<int> pending{2};
      std::atomic<std::int64_t> slot{kEmpty};
      std::atomic<int> publishes{0};
    };
    auto state = std::make_shared<State>();
    std::vector<mc::ThreadBody> threads;
    for (int producer = 0; producer < 2; ++producer) {
      threads.push_back([state] {
        mc::sched_point(mc::Op::kEdgeAcqRel, &state->pending);
        race::edge_acq_rel(&state->pending);
        if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          race::edge_acquire(&state->pending);
          state->publishes.fetch_add(1);
          mc::sched_point(mc::Op::kEdgeRelease, &state->slot);
          race::edge_release(&state->slot);
          state->slot.store(7, std::memory_order_release);
          mc::notify(&state->slot);
        }
      });
    }
    threads.push_back([state] {
      mc::sched_point(mc::Op::kEdgeAcquire, &state->slot);
      mc::wait_until(&state->slot, [state] {
        return state->slot.load(std::memory_order_acquire) != kEmpty;
      });
      race::edge_acquire(&state->slot);
      mc::check(state->slot.load(std::memory_order_acquire) == 7,
                "published task value");
      mc::check(state->publishes.load() == 1, "exactly one publisher");
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.schedules, 2u);
}

// Parity buffer-swap protocol, correctly ordered: the kernel write and
// the swap are separated by a barrier, so the swap's exclusive-write
// model of both df roles never overlaps a kernel access in any
// schedule. (The premature-swap bug model drops the barrier — see
// test_modelcheck_bugs.cpp.)
TEST(McModels, ParitySwapOrderedByBarrierIsRaceFree) {
  const mc::Result result = mc::explore(opts("parity-clean"), [] {
    struct State {
      CubeGrid grid{8, 4, 4, 4};  // two cubes
      SpinBarrier barrier{2};
    };
    auto state = std::make_shared<State>();
    std::vector<mc::ThreadBody> threads;
    threads.push_back([state] {
      mc::sched_point(mc::Op::kAccess, &state->grid);
      race::access(&state->grid, 0, RaceField::kDf, RaceAccess::kWrite,
                   "kernel write");
      state->barrier.arrive_and_wait();
    });
    threads.push_back([state] {
      state->barrier.arrive_and_wait();
      state->grid.swap_df_buffers();
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
}

// Claim-once: with racing cancellers the real CancelToken must elect
// exactly one winner, and the published cause/reason pair must be the
// winner's, never a mix — in every interleaving. Both winners must
// occur somewhere in the explored space.
TEST(McModels, CancelTokenClaimOnceElectsOneConsistentWinner) {
  const auto winners = std::make_shared<std::set<std::string>>();
  const mc::Result result = mc::explore(opts("token"), [winners] {
    auto token = std::make_shared<CancelToken>();
    std::vector<mc::ThreadBody> threads;
    threads.push_back(
        [token] { token->cancel("first canceller", CancelCause::kUser); });
    threads.push_back([token] {
      token->cancel("second canceller", CancelCause::kWatchdog);
    });
    threads.push_back([token, winners] {
      mc::wait_until(token.get(), [token] { return token->cancelled(); });
      const CancelCause cause = token->cause();
      const std::string reason = token->reason();
      const bool user_won =
          cause == CancelCause::kUser && reason == "first canceller";
      const bool watchdog_won =
          cause == CancelCause::kWatchdog && reason == "second canceller";
      mc::check(user_won || watchdog_won,
                "winner's cause and reason must be consistent");
      winners->insert(user_won ? "user" : "watchdog");
    });
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(winners->count("user"), 1u);
  EXPECT_EQ(winners->count("watchdog"), 1u);
}

// The whole clean suite again under a CHESS-style preemption bound:
// the bounded space is a subset, so it must also be clean, and these
// tiny models are fully covered at two preemptions.
TEST(McModels, CleanModelsPassAtPreemptionBound) {
  mc::Options bounded = opts("spinlock-bound");
  bounded.preemption_bound = 2;
  const mc::Result result = mc::explore(bounded, [] {
    struct State {
      SpinLock lock;
      int in_critical_section = 0;
    };
    auto state = std::make_shared<State>();
    std::vector<mc::ThreadBody> threads;
    for (int tid = 0; tid < 2; ++tid) {
      threads.push_back([state] {
        state->lock.lock();
        mc::check(state->in_critical_section == 0, "exclusion at bound");
        state->in_critical_section = 1;
        mc::sched_point(mc::Op::kAccess, &state->in_critical_section);
        state->in_critical_section = 0;
        state->lock.unlock();
      });
    }
    return threads;
  });
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.exhausted);
}

}  // namespace
}  // namespace lbmib

#else  // !LBMIB_MODELCHECK_ENABLED

TEST(McModels, RequiresModelcheckBuild) {
  GTEST_SKIP() << "built without LBMIB_MODELCHECK";
}

#endif
