// Critical-path attribution with hand-built span sets whose answers
// are known exactly: overlap priority (wait > halo > compute), child
// clipping at window edges, uncovered time charged to serial, and the
// per-step longest-window assembly of the critical path.
#include <gtest/gtest.h>

#include <vector>

#include "obs/critical_path.hpp"
#include "obs/trace.hpp"

namespace lbmib::obs {
namespace {

SpanEvent make(SpanCat cat, const char* name, std::uint32_t tid,
               std::int64_t start_ns, std::int64_t dur_ns,
               std::int64_t arg = -1) {
  SpanEvent e{};
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.arg = arg;
  e.name = name;
  e.tid = tid;
  e.cat = cat;
  return e;
}

constexpr double kNs = 1e-9;

TEST(CriticalPath, EmptyTraceYieldsEmptyReport) {
  const CriticalPathReport report = attribute_spans({});
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.steps, 0u);
  EXPECT_NE(report.to_string().find("no step spans"), std::string::npos);
}

TEST(CriticalPath, SingleThreadBucketsWithPriorityAndSerial) {
  // Window [0,1000): kernel [0,600) overlapped by barrier [500,700)
  // (wait wins on [500,600)), halo [700,900), nothing on [900,1000).
  std::vector<SpanEvent> events;
  events.push_back(make(SpanCat::kStep, "step", 0, 0, 1000, 0));
  events.push_back(make(SpanCat::kKernel, "collide", 0, 0, 600));
  events.push_back(make(SpanCat::kBarrier, "barrier.wait", 0, 500, 200));
  events.push_back(make(SpanCat::kHalo, "exchange_halos", 0, 700, 200));

  const CriticalPathReport report = attribute_spans(events);
  ASSERT_EQ(report.threads.size(), 1u);
  const PathBreakdown& b = report.threads[0].breakdown;
  EXPECT_EQ(b.steps, 1u);
  EXPECT_NEAR(b.step_seconds, 1000 * kNs, 1e-15);
  EXPECT_NEAR(b.compute_seconds, 500 * kNs, 1e-15);
  EXPECT_NEAR(b.barrier_seconds, 200 * kNs, 1e-15);
  EXPECT_NEAR(b.halo_seconds, 200 * kNs, 1e-15);
  EXPECT_NEAR(b.serial_seconds, 100 * kNs, 1e-15);
  // The buckets partition the window exactly.
  EXPECT_NEAR(b.compute_seconds + b.barrier_seconds + b.halo_seconds +
                  b.serial_seconds,
              b.step_seconds, 1e-15);
}

TEST(CriticalPath, ChildrenClipToWindowAndCheckpointCountsAsHalo) {
  // Kernel starts before and checkpoint ends after the window — both
  // clip; spans outside entirely are dropped.
  std::vector<SpanEvent> events;
  events.push_back(make(SpanCat::kStep, "step", 0, 1000, 1000, 0));
  events.push_back(make(SpanCat::kKernel, "stream", 0, 800, 600));
  events.push_back(make(SpanCat::kCheckpoint, "checkpoint.save", 0,
                        1800, 500));
  events.push_back(make(SpanCat::kKernel, "outside", 0, 3000, 100));

  const PathBreakdown& b =
      attribute_spans(events).threads.at(0).breakdown;
  EXPECT_NEAR(b.compute_seconds, 400 * kNs, 1e-15);  // [1000,1400)
  EXPECT_NEAR(b.halo_seconds, 200 * kNs, 1e-15);     // [1800,2000)
  EXPECT_NEAR(b.serial_seconds, 400 * kNs, 1e-15);   // [1400,1800)
}

TEST(CriticalPath, CriticalPathTakesLongestWindowPerStep) {
  std::vector<SpanEvent> events;
  // Step 0 on both threads; t1's window is longer and barrier-heavy,
  // so the critical path must carry t1's breakdown for step 0.
  events.push_back(make(SpanCat::kStep, "step", 0, 0, 1000, 0));
  events.push_back(make(SpanCat::kKernel, "collide", 0, 0, 1000));
  events.push_back(make(SpanCat::kStep, "step", 1, 0, 1200, 0));
  events.push_back(make(SpanCat::kKernel, "collide", 1, 0, 400));
  events.push_back(make(SpanCat::kBarrier, "barrier.wait", 1, 400, 900));
  // Step 1 only on t0, all compute.
  events.push_back(make(SpanCat::kStep, "step", 0, 2000, 400, 1));
  events.push_back(make(SpanCat::kKernel, "collide", 0, 2000, 400));

  const CriticalPathReport report = attribute_spans(events);
  ASSERT_EQ(report.threads.size(), 2u);
  EXPECT_EQ(report.steps, 2u);

  const PathBreakdown& crit = report.critical;
  EXPECT_EQ(crit.steps, 2u);
  // Step 0 from t1 (1200 ns: 400 compute + 800 clipped wait) plus
  // step 1 from t0 (400 ns compute).
  EXPECT_NEAR(crit.step_seconds, 1600 * kNs, 1e-15);
  EXPECT_NEAR(crit.compute_seconds, 800 * kNs, 1e-15);
  EXPECT_NEAR(crit.barrier_seconds, 800 * kNs, 1e-15);
  EXPECT_NEAR(crit.serial_seconds, 0.0, 1e-15);

  // Per-thread totals are still per-thread.
  const PathBreakdown& t0 = report.threads[0].breakdown;
  EXPECT_EQ(t0.steps, 2u);
  EXPECT_NEAR(t0.compute_seconds, 1400 * kNs, 1e-15);
  const PathBreakdown& t1 = report.threads[1].breakdown;
  EXPECT_EQ(t1.steps, 1u);
  EXPECT_NEAR(t1.barrier_seconds, 800 * kNs, 1e-15);

  // Fractions and the rendered table agree with the raw seconds.
  EXPECT_NEAR(crit.compute_frac(), 0.5, 1e-12);
  EXPECT_NEAR(crit.barrier_frac(), 0.5, 1e-12);
  const std::string table = report.to_string();
  EXPECT_NE(table.find("critical"), std::string::npos);
  EXPECT_NE(table.find("t0"), std::string::npos);
  EXPECT_NE(table.find("t1"), std::string::npos);
}

#if LBMIB_TRACE_ENABLED
TEST(CriticalPath, AttributesTheLiveTracerSession) {
  Tracer::start();
  record_span(SpanCat::kStep, "step", 0, 1000, 0);
  record_span(SpanCat::kKernel, "collide", 100, 500);
  const CriticalPathReport report = attribute_current_session();
  Tracer::stop();

  ASSERT_EQ(report.threads.size(), 1u);
  const PathBreakdown& b = report.threads[0].breakdown;
  EXPECT_NEAR(b.compute_seconds, 500 * kNs, 1e-15);
  EXPECT_NEAR(b.serial_seconds, 500 * kNs, 1e-15);
}
#endif

}  // namespace
}  // namespace lbmib::obs
