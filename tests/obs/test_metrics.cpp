// Metrics registry tests: instrument semantics, exporter formats, and a
// concurrent-update stress (the TSan leg runs this binary under
// -fsanitize=thread via the `concurrency` label).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace lbmib::obs {
namespace {

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test_total", "a counter");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);

  Gauge& g = registry.gauge("test_gauge");
  g.set(4.0);
  g.max_of(2.0);  // below: no change
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.max_of(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);

  registry.reset_values();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, FindOrCreateReturnsTheSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("same_total");
  Counter& b = registry.counter("same_total");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, TypeMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("mismatch");
  EXPECT_THROW(registry.gauge("mismatch"), Error);
  EXPECT_THROW(registry.histogram("mismatch", {1.0}), Error);
}

TEST(Metrics, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat_seconds", {0.1, 1.0, 10.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(0.7);
  h.observe(100.0);  // +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.05 + 0.5 + 0.7 + 100.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.05);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.cumulative_count(0), 1u);  // <= 0.1
  EXPECT_EQ(h.cumulative_count(1), 3u);  // <= 1.0
  EXPECT_EQ(h.cumulative_count(2), 3u);  // <= 10.0
  EXPECT_EQ(h.cumulative_count(3), 4u);  // +Inf
}

TEST(Metrics, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.counter("demo_total", "events so far").inc(3);
  registry.gauge("demo_gauge{kind=\"a\"}", "labelled gauge").set(1.5);
  registry.histogram("demo_seconds", {0.5, 2.0}, "latencies").observe(1.0);
  const std::string text = registry.prometheus_text();

  EXPECT_NE(text.find("# HELP demo_total events so far"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("demo_total 3"), std::string::npos);
  EXPECT_NE(text.find("demo_gauge{kind=\"a\"} 1.5"), std::string::npos);
  // HELP/TYPE of a labelled metric use the base name, not the label set.
  EXPECT_NE(text.find("# TYPE demo_gauge gauge"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE demo_gauge{"), std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"0.5\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("demo_seconds_count 1"), std::string::npos);
}

TEST(Metrics, CsvFormat) {
  MetricsRegistry registry;
  registry.counter("csv_total").inc(2);
  const std::string csv = registry.csv();
  EXPECT_NE(csv.find("metric,type,stat,value"), std::string::npos);
  EXPECT_NE(csv.find("csv_total,counter,value,2"), std::string::npos);
}

TEST(Metrics, WellKnownAccessorsAreStable) {
  // The cached references pattern the hot paths rely on: repeated calls
  // return the same instrument, and it lives in the global registry.
  EXPECT_EQ(&metric_steps_total(), &metric_steps_total());
  EXPECT_EQ(&metric_barrier_wait_seconds(), &metric_barrier_wait_seconds());
  EXPECT_EQ(&metric_checkpoint_write_seconds(),
            &metric_checkpoint_write_seconds());
  EXPECT_EQ(&MetricsRegistry::global().counter("lbmib_steps_total"),
            &metric_steps_total());
}

TEST(Metrics, ConcurrentUpdatesSumExactly) {
  // Counters/gauges/histograms bumped from many threads at once; exact
  // totals prove the CAS loops lose no update, and the TSan leg proves
  // the accesses are clean.
  MetricsRegistry registry;
  Counter& c = registry.counter("stress_total");
  Gauge& peak = registry.gauge("stress_peak");
  Histogram& h = registry.histogram("stress_seconds", {0.25, 0.5, 0.75});

  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        peak.max_of(static_cast<double>(t * kIters + i));
        h.observe(static_cast<double>(i % 100) / 100.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_DOUBLE_EQ(c.value(), static_cast<double>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(peak.value(),
                   static_cast<double>(kThreads * kIters - 1));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(h.cumulative_count(3),
            static_cast<std::uint64_t>(kThreads * kIters));

  // Exporting while idle reflects the final state.
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("stress_total 80000"), std::string::npos);
}

}  // namespace
}  // namespace lbmib::obs
