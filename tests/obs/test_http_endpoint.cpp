// Telemetry HTTP server tests: loopback scrape of the default
// endpoints, 404/405 handling, the Simulation-level /healthz and
// /status builders, and cancel-clean shutdown. Pure std::thread (the
// server daemon) — rides the `concurrency` label so TSan watches the
// handler/solver-thread contract.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/params.hpp"
#include "core/simulation.hpp"
#include "obs/server.hpp"
#include "obs/trace.hpp"

namespace lbmib::obs {
namespace {

/// Minimal HTTP client: one request, read to EOF (the server closes
/// after each response).
std::string http_request(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return {};
  }
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_request(
      port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

TEST(HttpEndpoint, ServesHandlersAndErrors) {
  TelemetryServer server;
  server.handle("/ping", [] {
    HttpResponse r;
    r.body = "pong";
    return r;
  });
  register_default_endpoints(server);
  if (!server.start(0)) {
    GTEST_SKIP() << "no loopback sockets on this host";
  }
  EXPECT_TRUE(server.running());
  const int port = server.port();
  ASSERT_GT(port, 0);

  const std::string ping = http_get(port, "/ping");
  EXPECT_NE(ping.find("200"), std::string::npos);
  EXPECT_NE(ping.find("pong"), std::string::npos);
  EXPECT_NE(ping.find("Content-Length:"), std::string::npos);

  // /metrics serves the global Prometheus registry.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("lbmib_"), std::string::npos);

  // Query strings are stripped before path lookup.
  EXPECT_NE(http_get(port, "/ping?x=1").find("pong"),
            std::string::npos);

  EXPECT_NE(http_get(port, "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_request(port,
                         "POST /ping HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("405"),
            std::string::npos);

  EXPECT_GE(server.requests(), 5u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(HttpEndpoint, TraceEndpointReports503WithoutASession) {
  Tracer::stop();  // make sure no session is active
  TelemetryServer server;
  register_default_endpoints(server);
  if (!server.start(0)) {
    GTEST_SKIP() << "no loopback sockets on this host";
  }
  EXPECT_NE(http_get(server.port(), "/trace").find("503"),
            std::string::npos);
  server.stop();
}

TEST(HttpEndpoint, RebindsAfterStopAndSurvivesPortCollision) {
  TelemetryServer a;
  if (!a.start(0)) {
    GTEST_SKIP() << "no loopback sockets on this host";
  }
  const int port = a.port();

  // Second server on the same port: bind fails, start() reports it,
  // the process carries on — telemetry is best-effort.
  TelemetryServer b;
  EXPECT_FALSE(b.start(port));
  EXPECT_FALSE(b.running());

  a.stop();
  // The port is free again (SO_REUSEADDR): a fresh server can claim it.
  TelemetryServer c;
  EXPECT_TRUE(c.start(port));
  EXPECT_EQ(c.port(), port);
  c.stop();
}

TEST(HttpEndpoint, SimulationServesHealthAndStatus) {
  SimulationParams params = presets::tiny();
  Simulation sim(SolverKind::kSequential, params);
  if (!sim.start_telemetry(0)) {
    GTEST_SKIP() << "no loopback sockets on this host";
  }
  ASSERT_NE(sim.telemetry(), nullptr);
  const int port = sim.telemetry()->port();

  sim.run(2);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_NE(health.find("\"status\""), std::string::npos);
  EXPECT_NE(health.find("\"watchdog_armed\""), std::string::npos);

  const std::string status = http_get(port, "/status");
  EXPECT_NE(status.find("\"solver\""), std::string::npos);
  EXPECT_NE(status.find("\"step\""), std::string::npos);

  sim.stop_telemetry();
  EXPECT_FALSE(sim.telemetry()->running());
}

}  // namespace
}  // namespace lbmib::obs
