// perf_event_open wrapper tests. The probe-and-degrade path runs on
// every host (that is the point: lockdown must never fail a run); the
// counter-sanity assertions arm only when the host actually grants
// events, so the suite passes identically under perf_event_paranoid
// lockdown, in PMU-less containers, and on bare metal.
#include <gtest/gtest.h>

#include <string>

#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"

namespace lbmib::obs {
namespace {

/// Burn a few milliseconds of CPU so software task-clock (and cycles,
/// where granted) visibly advance between begin/end.
double burn() {
  volatile double sink = 1.0;
  for (int i = 0; i < 2'000'000; ++i) sink = sink * 1.0000001 + 1e-9;
  return sink;
}

TEST(PerfCounters, AvailabilityProbeIsConsistent) {
  const PerfAvailability& av = PerfCounters::availability();
  bool some = false;
  for (int i = 0; i < kNumPerfEvents; ++i) some = some || av.event[i];
  EXPECT_EQ(av.any, some);
  if (av.hardware) {
    EXPECT_TRUE(av.event[static_cast<int>(PerfEvent::kCycles)]);
    EXPECT_TRUE(av.event[static_cast<int>(PerfEvent::kInstructions)]);
  }
  EXPECT_FALSE(av.to_string().empty());
  // The probe is cached: a second call returns the same object.
  EXPECT_EQ(&av, &PerfCounters::availability());
}

TEST(PerfCounters, EventNamesAreStable) {
  EXPECT_STREQ(perf_event_name(PerfEvent::kCycles), "cycles");
  EXPECT_STREQ(perf_event_name(PerfEvent::kTaskClock), "task_clock");
  EXPECT_STREQ(perf_event_name(PerfEvent::kPageFaults), "page_faults");
}

TEST(PerfCounters, StartStopNeverFailsTheRun) {
  // start() reports whether counting is live, mirroring availability;
  // either way the calls are safe and idempotent.
  const bool live = PerfCounters::start();
  EXPECT_EQ(live, PerfCounters::availability().any);
  EXPECT_EQ(PerfCounters::active(), live);
  PerfCounters::stop();
  EXPECT_FALSE(PerfCounters::active());
  PerfCounters::stop();  // idempotent
  PerfCounters::reset();
}

TEST(PerfCounters, AccumulatesPerKernelDeltas) {
  if (!PerfCounters::start()) {
    GTEST_SKIP() << "host grants no perf events";
  }
  PerfCounters::reset();

  PerfSample s{};
  PerfCounters::begin(s);
  burn();
  PerfCounters::end("pc_test_kernel", s);
  PerfCounters::begin(s);
  burn();
  PerfCounters::end("pc_test_kernel", s);
  PerfCounters::stop();

  const auto totals = PerfCounters::snapshot();
  const KernelCounters* kc = nullptr;
  for (const auto& k : totals) {
    if (k.name == "pc_test_kernel") kc = &k;
  }
  ASSERT_NE(kc, nullptr) << "kernel missing from snapshot";
  EXPECT_EQ(kc->spans, 2u);

  const PerfAvailability& av = PerfCounters::availability();
  if (av.event[static_cast<int>(PerfEvent::kTaskClock)]) {
    // burn() runs ~ms; task clock is in ns.
    EXPECT_GT(kc->value[static_cast<int>(PerfEvent::kTaskClock)], 1e5);
  }
  if (av.hardware) {
    EXPECT_GT(kc->cycles(), 0.0);
    EXPECT_GT(kc->instructions(), 0.0);
    EXPECT_GT(kc->ipc(), 0.0);
  }

  PerfCounters::reset();
  for (const auto& k : PerfCounters::snapshot()) {
    EXPECT_NE(k.name, "pc_test_kernel");
  }
}

TEST(PerfCounters, EndWithInvalidBeginIsANoOp) {
  PerfCounters::start();
  PerfCounters::reset();
  PerfSample s{};  // valid == false: as if the group failed to open
  PerfCounters::end("pc_invalid", s);
  PerfCounters::stop();
  for (const auto& k : PerfCounters::snapshot()) {
    EXPECT_NE(k.name, "pc_invalid");
  }
  PerfCounters::reset();
}

#if LBMIB_TRACE_ENABLED
TEST(PerfCounters, KernelSpansSampleAutomatically) {
  if (!PerfCounters::start()) {
    GTEST_SKIP() << "host grants no perf events";
  }
  PerfCounters::reset();
  {
    Span span(SpanCat::kKernel, "pc_span_kernel");
    burn();
  }
  {
    Span step(SpanCat::kStep, "pc_span_step");  // not kernel-grade
  }
  PerfCounters::stop();

  bool saw_kernel = false;
  for (const auto& k : PerfCounters::snapshot()) {
    if (k.name == "pc_span_kernel") saw_kernel = true;
    EXPECT_NE(k.name, "pc_span_step");
  }
  EXPECT_TRUE(saw_kernel);
  PerfCounters::reset();
}
#endif

}  // namespace
}  // namespace lbmib::obs
