// Span tracer + Chrome-trace exporter tests. The exporter checks parse
// the JSON with light string scanning (no JSON library in the image);
// scripts/check_trace.py does the full schema validation in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/params.hpp"
#include "core/simulation.hpp"
#include "obs/exporters.hpp"
#include "obs/trace.hpp"

namespace lbmib::obs {
namespace {

#if LBMIB_TRACE_ENABLED

TEST(Trace, InactiveByDefaultAndSpansAreDropped) {
  Tracer::stop();
  EXPECT_FALSE(Tracer::active());
  { Span span(SpanCat::kOther, "ignored"); }
  Tracer::start();
  const auto events = Tracer::drain();
  for (const SpanEvent& e : events) {
    EXPECT_STRNE(e.name, "ignored");
  }
  Tracer::stop();
}

TEST(Trace, RecordsRaiiSpansWithArgsAndCategories) {
  Tracer::start();
  {
    Span outer(SpanCat::kStep, "step", 7);
    Span inner(SpanCat::kKernel, "collide");
  }
  record_span(SpanCat::kHalo, "exchange_halos", 10, 20, 3);
  Tracer::stop();

  const auto events = Tracer::drain();
  ASSERT_EQ(events.size(), 3u);
  // drain() sorts by (tid, start): the manual span's synthetic ts=10
  // lands first, then outer (opened before inner).
  EXPECT_STREQ(events[0].name, "exchange_halos");
  EXPECT_EQ(events[0].cat, SpanCat::kHalo);
  EXPECT_EQ(events[0].start_ns, 10);
  EXPECT_EQ(events[0].dur_ns, 20);
  EXPECT_EQ(events[0].arg, 3);
  EXPECT_STREQ(events[1].name, "step");
  EXPECT_EQ(events[1].cat, SpanCat::kStep);
  EXPECT_EQ(events[1].arg, 7);
  EXPECT_STREQ(events[2].name, "collide");
  EXPECT_EQ(events[2].arg, -1);
  // Inner nests inside outer.
  EXPECT_GE(events[2].start_ns, events[1].start_ns);
  EXPECT_LE(events[2].start_ns + events[2].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST(Trace, RestartDiscardsThePreviousSession) {
  Tracer::start();
  { Span span(SpanCat::kOther, "first-session"); }
  Tracer::start();
  { Span span(SpanCat::kOther, "second-session"); }
  Tracer::stop();
  const auto events = Tracer::drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second-session");
}

TEST(Trace, AssignsDistinctTidsAndNamesAcrossThreads) {
  Tracer::start();
  Tracer::set_thread_name("trace-main");
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      Tracer::set_thread_name("trace-worker-" + std::to_string(t));
      Span span(SpanCat::kKernel, "work");
    });
  }
  for (std::thread& w : workers) w.join();
  { Span span(SpanCat::kKernel, "main-work"); }
  Tracer::stop();

  const auto events = Tracer::drain();
  std::vector<std::uint32_t> tids;
  for (const SpanEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<Size>(kThreads) + 1);

  const auto names = Tracer::thread_names();
  int named_workers = 0;
  bool has_main = false;
  for (const auto& [tid, name] : names) {
    if (name.rfind("trace-worker-", 0) == 0) ++named_workers;
    if (name == "trace-main") has_main = true;
  }
  EXPECT_EQ(named_workers, kThreads);
  EXPECT_TRUE(has_main);
}

TEST(Trace, RingWrapsKeepingNewestEventsAndCountsDrops) {
  constexpr Size kCapacity = 8;
  Tracer::start(kCapacity);
  for (int i = 0; i < 20; ++i) {
    Span span(SpanCat::kOther, "wrap");
  }
  Tracer::stop();
  const auto events = Tracer::drain();
  EXPECT_EQ(events.size(), kCapacity);
  EXPECT_EQ(Tracer::dropped(), 20 - kCapacity);
  // Ring reconstruction must preserve chronological order.
  for (Size i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
}

TEST(Trace, ChromeJsonEmitsMetadataAndCompleteEvents) {
  std::vector<SpanEvent> events;
  events.push_back(SpanEvent{1000, 2000, 5, "collide", 0, SpanCat::kKernel});
  events.push_back(
      SpanEvent{4000, 1000, -1, "barrier.wait", 1, SpanCat::kBarrier});
  const std::string json =
      chrome_trace_json(events, {{0, "main"}, {1, "worker-1"}});

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"collide\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  // ts/dur are microseconds: 1000 ns -> 1 us.
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
  // args only for spans that carry one.
  EXPECT_NE(json.find("\"args\":{\"arg\":5}"), std::string::npos);
}

TEST(Trace, CubeSolverSessionShowsKernelAndBarrierWaitSpans) {
  SimulationParams params = presets::tiny();
  params.num_threads = 2;
  Simulation sim(SolverKind::kCube, params);
  sim.enable_tracing();
  sim.run(3);
  Tracer::stop();

  const auto events = Tracer::drain();
  ASSERT_FALSE(events.empty());
  std::map<std::string, int> by_name;
  std::vector<std::uint32_t> barrier_tids;
  for (const SpanEvent& e : events) {
    ++by_name[e.name];
    if (std::string(e.name) == "barrier.wait") barrier_tids.push_back(e.tid);
  }
  EXPECT_GT(by_name["step"], 0);
  EXPECT_GT(by_name["spread"], 0);
  EXPECT_GT(by_name["collide_stream"], 0);
  EXPECT_GT(by_name["update_velocity"], 0);
  EXPECT_GT(by_name["move_fibers"], 0);
  EXPECT_GT(by_name["barrier.wait"], 0);
  // The acceptance criterion: barrier waits are visible per thread.
  std::sort(barrier_tids.begin(), barrier_tids.end());
  barrier_tids.erase(
      std::unique(barrier_tids.begin(), barrier_tids.end()),
      barrier_tids.end());
  EXPECT_EQ(barrier_tids.size(), 2u);

  // And the exported JSON is per-tid monotonic in file order (what the
  // Chrome trace viewer requires of complete events).
  std::map<std::uint32_t, std::int64_t> last_start;
  for (const SpanEvent& e : events) {
    auto it = last_start.find(e.tid);
    if (it != last_start.end()) EXPECT_GE(e.start_ns, it->second);
    last_start[e.tid] = e.start_ns;
  }
}

#else  // !LBMIB_TRACE_ENABLED

TEST(Trace, DisabledMacrosCompileToNothing) {
  int n = 0;
  // Arguments must not even be evaluated in an LBMIB_TRACE=OFF build.
  LBMIB_TRACE_SPAN(SpanCat::kOther, (n++, "x"));
  LBMIB_TRACE_ON(n++;)
  EXPECT_EQ(n, 0);
  EXPECT_EQ(LBMIB_TRACE_ENABLED, 0);
}

TEST(Trace, DisabledBuildStillDrainsEmpty) {
  Tracer::start();
  { Span span(SpanCat::kOther, "manual"); }  // class itself still works
  Tracer::stop();
  // Only the manual Span construction records; the macros above did not.
  const auto events = Tracer::drain();
  EXPECT_LE(events.size(), 1u);
}

#endif  // LBMIB_TRACE_ENABLED

}  // namespace
}  // namespace lbmib::obs
