#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace lbmib {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, DoubleInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SplitMix64, DoubleInCustomRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(SplitMix64, RoughlyUniformMean) {
  SplitMix64 rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace lbmib
