#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/config_file.hpp"
#include "common/error.hpp"

namespace lbmib {
namespace {

SimulationParams parse(const std::string& text) {
  std::istringstream in(text);
  return parse_params(in);
}

TEST(ConfigFile, ParsesScalarsAndVectors) {
  const SimulationParams p = parse(
      "nx = 32\nny = 16\nnz = 8\n"
      "tau = 0.9\nrho0 = 1.1\n"
      "body_force = 1e-5 0 -2e-5\n"
      "initial_velocity = 0.01 0.02 0.03\n"
      "num_fibers = 6\nnodes_per_fiber = 6\n"
      "sheet_width = 4\nsheet_height = 4\nsheet_origin = 10 6 2\n"
      "cube_size = 4\nnum_threads = 3\n");
  EXPECT_EQ(p.nx, 32);
  EXPECT_EQ(p.ny, 16);
  EXPECT_EQ(p.nz, 8);
  EXPECT_DOUBLE_EQ(p.tau, 0.9);
  EXPECT_DOUBLE_EQ(p.rho0, 1.1);
  EXPECT_EQ(p.body_force, (Vec3{1e-5, 0.0, -2e-5}));
  EXPECT_EQ(p.initial_velocity, (Vec3{0.01, 0.02, 0.03}));
  EXPECT_EQ(p.sheet_origin, (Vec3{10.0, 6.0, 2.0}));
  EXPECT_EQ(p.num_threads, 3);
}

TEST(ConfigFile, ParsesEnums) {
  SimulationParams p = parse("boundary = channel\npin_mode = center\n");
  EXPECT_EQ(p.boundary, BoundaryType::kChannel);
  EXPECT_EQ(p.pin_mode, PinMode::kCenter);
  p = parse("boundary = periodic\npin_mode = leading_edge\n");
  EXPECT_EQ(p.boundary, BoundaryType::kPeriodic);
  EXPECT_EQ(p.pin_mode, PinMode::kLeadingEdge);
}

TEST(ConfigFile, CommentsAndBlanksIgnored) {
  const SimulationParams p = parse(
      "# full line comment\n"
      "\n"
      "   \t \n"
      "nx = 24   # trailing comment\n");
  EXPECT_EQ(p.nx, 24);
}

TEST(ConfigFile, SheetSectionsAppendExtraSheets) {
  const SimulationParams p = parse(
      "nx = 32\nny = 16\nnz = 16\n"
      "[sheet]\n"
      "num_fibers = 5\nnodes_per_fiber = 7\nwidth = 3\nheight = 4\n"
      "origin = 10 4 4\nstretching_coeff = 0.03\nbending_coeff = 0.003\n"
      "pin_mode = leading_edge\n"
      "[sheet]\n"
      "num_fibers = 4\nnodes_per_fiber = 4\nwidth = 2\nheight = 2\n"
      "origin = 20 8 8\nstretching_coeff = 0.01\nbending_coeff = 0.001\n");
  ASSERT_EQ(p.extra_sheets.size(), 2u);
  EXPECT_EQ(p.extra_sheets[0].num_fibers, 5);
  EXPECT_EQ(p.extra_sheets[0].pin_mode, PinMode::kLeadingEdge);
  EXPECT_EQ(p.extra_sheets[1].origin, (Vec3{20.0, 8.0, 8.0}));
}

TEST(ConfigFile, RejectsUnknownKey) {
  EXPECT_THROW(parse("nx = 32\nbogus = 7\n"), Error);
}

TEST(ConfigFile, RejectsUnknownSheetKey) {
  EXPECT_THROW(parse("[sheet]\nnum_fibers = 2\nnodes_per_fiber = 2\n"
                     "bogus = 1\n"),
               Error);
}

TEST(ConfigFile, RejectsMalformedLines) {
  EXPECT_THROW(parse("nx 32\n"), Error);        // no '='
  EXPECT_THROW(parse("= 32\n"), Error);         // empty key
  EXPECT_THROW(parse("nx =\n"), Error);         // empty value
  EXPECT_THROW(parse("nx = abc\n"), Error);     // not a number
  EXPECT_THROW(parse("nx = 3 4\n"), Error);     // trailing junk
  EXPECT_THROW(parse("body_force = 1 2\n"), Error);  // short vector
  EXPECT_THROW(parse("[fluid]\n"), Error);      // unknown section
  EXPECT_THROW(parse("boundary = open\n"), Error);
  EXPECT_THROW(parse("pin_mode = welded\n"), Error);
}

TEST(ConfigFile, ErrorsCarryLineNumbers) {
  try {
    parse("nx = 32\n\nbogus = 1\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos)
        << e.what();
  }
}

TEST(ConfigFile, ValidationRunsAfterParsing) {
  EXPECT_THROW(parse("tau = 0.4\n"), Error);          // unstable tau
  EXPECT_THROW(parse("nx = 30\ncube_size = 4\n"), Error);  // indivisible
}

TEST(ConfigFile, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "lbmib_config_test.cfg";
  SimulationParams p = presets::table1_sequential();
  p.num_threads = 8;
  p.pin_mode = PinMode::kCenter;
  SheetSpec extra;
  extra.num_fibers = 9;
  extra.nodes_per_fiber = 11;
  extra.width = 2.5;
  extra.height = 3.5;
  extra.origin = {60.0, 30.0, 30.0};
  extra.stretching_coeff = 0.015;
  extra.bending_coeff = 0.0015;
  extra.pin_mode = PinMode::kLeadingEdge;
  p.extra_sheets.push_back(extra);

  save_params_file(p, path);
  const SimulationParams q = load_params_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(q.nx, p.nx);
  EXPECT_EQ(q.tau, p.tau);
  EXPECT_EQ(q.body_force, p.body_force);
  EXPECT_EQ(q.boundary, p.boundary);
  EXPECT_EQ(q.pin_mode, p.pin_mode);
  EXPECT_EQ(q.num_threads, p.num_threads);
  ASSERT_EQ(q.extra_sheets.size(), 1u);
  EXPECT_EQ(q.extra_sheets[0].num_fibers, 9);
  EXPECT_EQ(q.extra_sheets[0].origin, extra.origin);
  EXPECT_EQ(q.extra_sheets[0].pin_mode, PinMode::kLeadingEdge);
  EXPECT_DOUBLE_EQ(q.extra_sheets[0].stretching_coeff, 0.015);
}

TEST(ConfigFile, MissingFileThrows) {
  EXPECT_THROW(load_params_file("/nonexistent_xyz/params.cfg"), Error);
}

}  // namespace
}  // namespace lbmib
