#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/params.hpp"

namespace lbmib {
namespace {

TEST(SimulationParams, DefaultsAreValid) {
  SimulationParams p;
  EXPECT_NO_THROW(p.validate());
}

TEST(SimulationParams, PresetsAreValid) {
  EXPECT_NO_THROW(presets::tiny().validate());
  EXPECT_NO_THROW(presets::table1_sequential().validate());
  EXPECT_NO_THROW(presets::fig8_weak_scaling_base().validate());
}

TEST(SimulationParams, Table1PresetMatchesPaperInput) {
  const SimulationParams p = presets::table1_sequential();
  // "a 3D fluid grid of dimension 124x64x64 and an immersed 2D sheet of
  // dimension 20x20 with 52x52 fiber nodes"
  EXPECT_EQ(p.nx, 124);
  EXPECT_EQ(p.ny, 64);
  EXPECT_EQ(p.nz, 64);
  EXPECT_EQ(p.num_fibers, 52);
  EXPECT_EQ(p.nodes_per_fiber, 52);
  EXPECT_DOUBLE_EQ(p.sheet_width, 20.0);
  EXPECT_DOUBLE_EQ(p.sheet_height, 20.0);
}

TEST(SimulationParams, Fig8PresetMatchesPaperInput) {
  const SimulationParams p = presets::fig8_weak_scaling_base();
  // "the input of the single core experiment takes as input 128^3 fluid
  // nodes ... The fiber input size ... consists of 104x104 fiber nodes"
  EXPECT_EQ(p.nx, 128);
  EXPECT_EQ(p.ny, 128);
  EXPECT_EQ(p.nz, 128);
  EXPECT_EQ(p.num_fibers, 104);
  EXPECT_EQ(p.nodes_per_fiber, 104);
}

TEST(SimulationParams, RejectsNonPositiveGrid) {
  SimulationParams p;
  p.nx = 0;
  EXPECT_THROW(p.validate(), Error);
}

TEST(SimulationParams, RejectsUnstableTau) {
  SimulationParams p;
  p.tau = 0.5;
  EXPECT_THROW(p.validate(), Error);
  p.tau = 0.3;
  EXPECT_THROW(p.validate(), Error);
}

TEST(SimulationParams, RejectsNonPositiveDensity) {
  SimulationParams p;
  p.rho0 = 0.0;
  EXPECT_THROW(p.validate(), Error);
}

TEST(SimulationParams, RejectsNegativeStiffness) {
  SimulationParams p;
  p.stretching_coeff = -1.0;
  EXPECT_THROW(p.validate(), Error);
}

TEST(SimulationParams, RejectsZeroThreads) {
  SimulationParams p;
  p.num_threads = 0;
  EXPECT_THROW(p.validate(), Error);
}

TEST(SimulationParams, RejectsIndivisibleCubeSize) {
  SimulationParams p;
  p.nx = 64;
  p.ny = 32;
  p.nz = 32;
  p.cube_size = 5;  // 64 % 5 != 0
  EXPECT_THROW(p.validate(), Error);
}

TEST(SimulationParams, RejectsGridTooSmallForDelta) {
  SimulationParams p;
  p.nx = 2;
  p.ny = 2;
  p.nz = 2;
  p.cube_size = 1;
  p.num_fibers = 2;
  p.nodes_per_fiber = 2;
  EXPECT_THROW(p.validate(), Error);
}

TEST(SimulationParams, AllowsZeroFibers) {
  SimulationParams p;
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  EXPECT_NO_THROW(p.validate());
}

TEST(SimulationParams, ViscosityFollowsTau) {
  SimulationParams p;
  p.tau = 0.8;
  EXPECT_DOUBLE_EQ(p.viscosity(), 0.3 / 3.0);
  p.tau = 1.0;
  EXPECT_DOUBLE_EQ(p.viscosity(), 0.5 / 3.0);
}

TEST(SimulationParams, NodeCounts) {
  SimulationParams p;
  p.nx = 4;
  p.ny = 5;
  p.nz = 6;
  p.num_fibers = 3;
  p.nodes_per_fiber = 7;
  EXPECT_EQ(p.fluid_nodes(), 120u);
  EXPECT_EQ(p.fiber_nodes(), 21u);
}

TEST(SimulationParams, SummaryMentionsKeyValues) {
  SimulationParams p;
  const std::string s = p.summary();
  EXPECT_NE(s.find("fluid"), std::string::npos);
  EXPECT_NE(s.find("threads"), std::string::npos);
}

}  // namespace
}  // namespace lbmib
