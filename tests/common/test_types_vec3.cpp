#include <gtest/gtest.h>

#include <sstream>

#include "common/vec3.hpp"

namespace lbmib {
namespace {

TEST(Vec3, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, IndexOperatorMatchesComponents) {
  Vec3 v{1.0, 2.0, 3.0};
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[2], 3.0);
  v[1] = 7.0;
  EXPECT_EQ(v.y, 7.0);
}

TEST(Vec3, Addition) {
  Vec3 a{1.0, 2.0, 3.0};
  Vec3 b{0.5, -1.0, 2.0};
  const Vec3 c = a + b;
  EXPECT_EQ(c, (Vec3{1.5, 1.0, 5.0}));
}

TEST(Vec3, Subtraction) {
  const Vec3 c = Vec3{1.0, 2.0, 3.0} - Vec3{1.0, 2.0, 3.0};
  EXPECT_EQ(c, Vec3{});
}

TEST(Vec3, ScalarMultiplicationBothSides) {
  const Vec3 v{1.0, -2.0, 3.0};
  EXPECT_EQ(2.0 * v, v * 2.0);
  EXPECT_EQ((2.0 * v).y, -4.0);
}

TEST(Vec3, DivisionByScalar) {
  const Vec3 v = Vec3{2.0, 4.0, 8.0} / 2.0;
  EXPECT_EQ(v, (Vec3{1.0, 2.0, 4.0}));
}

TEST(Vec3, Negation) {
  EXPECT_EQ(-Vec3({1.0, -2.0, 3.0}), (Vec3{-1.0, 2.0, -3.0}));
}

TEST(Vec3, DotProduct) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, -5.0, 6.0}), 4.0 - 10.0 + 18.0);
}

TEST(Vec3, DotWithSelfIsNorm2) {
  const Vec3 v{3.0, 4.0, 12.0};
  EXPECT_DOUBLE_EQ(norm2(v), dot(v, v));
  EXPECT_DOUBLE_EQ(norm(v), 13.0);
}

TEST(Vec3, CrossProductOrthogonality) {
  const Vec3 a{1.0, 0.0, 0.0};
  const Vec3 b{0.0, 1.0, 0.0};
  EXPECT_EQ(cross(a, b), (Vec3{0.0, 0.0, 1.0}));
  // anti-commutative
  EXPECT_EQ(cross(b, a), (Vec3{0.0, 0.0, -1.0}));
}

TEST(Vec3, CrossIsPerpendicular) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-2.0, 0.5, 4.0};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
}

TEST(Vec3, CompoundOperators) {
  Vec3 v{1.0, 1.0, 1.0};
  v += Vec3{1.0, 2.0, 3.0};
  v -= Vec3{0.5, 0.5, 0.5};
  v *= 2.0;
  EXPECT_EQ(v, (Vec3{3.0, 5.0, 7.0}));
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3{1.0, 2.5, -3.0};
  EXPECT_EQ(os.str(), "(1, 2.5, -3)");
}

}  // namespace
}  // namespace lbmib
