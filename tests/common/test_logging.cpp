#include <gtest/gtest.h>

#include "common/logging.hpp"

namespace lbmib {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Logging, EmitBelowLevelDoesNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  log_debug("dropped ", 1);
  log_info("dropped ", 2.5);
  log_warn("dropped");
  set_log_level(original);
}

TEST(Logging, VariadicConcatenation) {
  EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
}

}  // namespace
}  // namespace lbmib
