#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/aligned_buffer.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/simd.hpp"

namespace lbmib {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesRequestedCount) {
  AlignedBuffer<double> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_NE(buf.data(), nullptr);
}

TEST(AlignedBuffer, DataIsCacheLineAligned) {
  for (Size count : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<double> buf(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                  kCacheLineBytes,
              0u)
        << "count=" << count;
  }
}

TEST(AlignedBuffer, ZeroInitialised) {
  AlignedBuffer<double> buf(257);
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, FillSetsEveryElement) {
  AlignedBuffer<int> buf(33);
  buf.fill(42);
  for (int v : buf) EXPECT_EQ(v, 42);
}

TEST(AlignedBuffer, IndexingReadsAndWrites) {
  AlignedBuffer<double> buf(10);
  buf[3] = 1.5;
  EXPECT_EQ(buf[3], 1.5);
  const auto& cbuf = buf;
  EXPECT_EQ(cbuf[3], 1.5);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> a(16);
  a[0] = 9.0;
  double* raw = a.data();
  AlignedBuffer<double> b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b[0], 9.0);
  EXPECT_TRUE(a.empty());

  AlignedBuffer<double> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), raw);
  EXPECT_TRUE(b.empty());
}

TEST(AlignedBuffer, MoveAssignToSelfSafe) {
  AlignedBuffer<double> a(8);
  a[2] = 5.0;
  AlignedBuffer<double>& alias = a;
  a = std::move(alias);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a[2], 5.0);
}

TEST(AlignedBuffer, ResetReallocatesAndZeroes) {
  AlignedBuffer<double> buf(4);
  buf.fill(3.0);
  buf.reset(10);
  EXPECT_EQ(buf.size(), 10u);
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, ResetToZeroReleases) {
  AlignedBuffer<double> buf(4);
  buf.reset(0);
  EXPECT_TRUE(buf.empty());
}

TEST(AlignedBuffer, SpanCoversBuffer) {
  AlignedBuffer<double> buf(5);
  auto s = buf.span();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.data(), buf.data());
}

TEST(AlignedBuffer, CustomAlignment) {
  AlignedBuffer<double, 4096> buf(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096, 0u);
}

TEST(AlignedBuffer, DefaultAlignmentIsSixtyFourBytes) {
  // Hard contract for the SIMD kernels: they std::assume_aligned<64> on
  // buffer bases, so the default must stay a full cache line (which also
  // satisfies AVX-512 loads).
  static_assert(kCacheLineBytes == 64);
  static_assert(AlignedBuffer<double>::alignment() == 64);
  static_assert(AlignedBuffer<float>::alignment() == 64);
  static_assert(AlignedBuffer<std::uint8_t>::alignment() == 64);
}

TEST(AlignedBuffer, ResetUninitializedAlignsWithoutTouching) {
  // The NUMA first-touch paths allocate with reset_uninitialized so the
  // worker team's writes — not the allocating thread — fault the pages
  // in. The allocation must still honour the alignment contract and
  // report the requested logical size.
  AlignedBuffer<double> buf;
  for (Size count : {1u, 7u, 63u, 64u, 65u, 1000u}) {
    buf.reset_uninitialized(count);
    EXPECT_EQ(buf.size(), count);
    EXPECT_TRUE(simd::is_cacheline_aligned(buf.data())) << count;
    // Writing every element must be in bounds (ASan/valgrind leg checks
    // the allocation really covers the rounded-up byte size).
    for (Size i = 0; i < count; ++i) buf[i] = 1.0;
  }
}

TEST(AlignedBuffer, FluidGridPlaneBasesAreCacheLineAligned) {
  // The fused sweep hands plane bases (df + dir * plane_stride) to the
  // lane kernels; the padded stride must keep every one of the 19
  // direction planes on the 64-byte contract, not just plane 0.
  for (Index nz : {3, 4, 5, 8, 13}) {
    FluidGrid grid(4, 3, nz);
    EXPECT_EQ(grid.plane_stride() % (kCacheLineBytes / sizeof(Real)), 0u)
        << "nz=" << nz;
    for (int dir = 0; dir < kQ; ++dir) {
      EXPECT_TRUE(simd::is_cacheline_aligned(grid.df_plane(dir)))
          << "nz=" << nz << " dir=" << dir;
      EXPECT_TRUE(simd::is_cacheline_aligned(grid.df_new_plane(dir)))
          << "nz=" << nz << " dir=" << dir;
    }
  }
}

}  // namespace
}  // namespace lbmib
