#include "common/crc32.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace lbmib {
namespace {

TEST(Crc32Test, StandardCheckValue) {
  // The canonical CRC-32/IEEE check vector.
  const char* msg = "123456789";
  EXPECT_EQ(crc32_of(msg, std::strlen(msg)), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(crc32_of("", 0), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32 crc;
  for (char c : data) crc.update(&c, 1);
  EXPECT_EQ(crc.value(), crc32_of(data.data(), data.size()));
}

TEST(Crc32Test, ResetRestoresEmptyState) {
  Crc32 crc;
  crc.update("garbage", 7);
  crc.reset();
  crc.update("123456789", 9);
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32Test, SingleBitFlipChangesValue) {
  std::string data(64, '\0');
  data[17] = 'x';
  const std::uint32_t before = crc32_of(data.data(), data.size());
  data[40] = static_cast<char>(data[40] ^ 0x10);
  EXPECT_NE(crc32_of(data.data(), data.size()), before);
}

}  // namespace
}  // namespace lbmib
