#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/profiler.hpp"

namespace lbmib {
namespace {

TEST(KernelProfiler, StartsEmpty) {
  KernelProfiler p;
  EXPECT_EQ(p.total_seconds(), 0.0);
  for (int k = 0; k < kNumKernels; ++k) {
    EXPECT_EQ(p.seconds(static_cast<Kernel>(k)), 0.0);
  }
}

TEST(KernelProfiler, AddAccumulates) {
  KernelProfiler p;
  p.add(Kernel::kCollision, 1.0);
  p.add(Kernel::kCollision, 0.5);
  p.add(Kernel::kStreaming, 0.25);
  EXPECT_DOUBLE_EQ(p.seconds(Kernel::kCollision), 1.5);
  EXPECT_DOUBLE_EQ(p.seconds(Kernel::kStreaming), 0.25);
  EXPECT_DOUBLE_EQ(p.total_seconds(), 1.75);
}

TEST(KernelProfiler, ScopeMeasuresElapsedTime) {
  KernelProfiler p;
  {
    KernelProfiler::Scope scope(p, Kernel::kMoveFibers);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(p.seconds(Kernel::kMoveFibers), 0.009);
  EXPECT_LT(p.seconds(Kernel::kMoveFibers), 1.0);
}

TEST(KernelProfiler, MergeAddsPerKernel) {
  KernelProfiler a, b;
  a.add(Kernel::kCollision, 1.0);
  b.add(Kernel::kCollision, 2.0);
  b.add(Kernel::kSpreadForce, 3.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds(Kernel::kCollision), 3.0);
  EXPECT_DOUBLE_EQ(a.seconds(Kernel::kSpreadForce), 3.0);
}

TEST(KernelProfiler, RankedRowsSortedDescending) {
  KernelProfiler p;
  p.add(Kernel::kCollision, 5.0);
  p.add(Kernel::kUpdateVelocity, 3.0);
  p.add(Kernel::kCopyDistribution, 1.0);
  const auto rows = p.ranked_rows();
  ASSERT_EQ(rows.size(), static_cast<Size>(kNumKernels));
  EXPECT_EQ(rows[0].kernel, Kernel::kCollision);
  EXPECT_EQ(rows[1].kernel, Kernel::kUpdateVelocity);
  EXPECT_EQ(rows[2].kernel, Kernel::kCopyDistribution);
  for (Size i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].seconds, rows[i].seconds);
  }
}

TEST(KernelProfiler, PercentagesSumToHundred) {
  KernelProfiler p;
  p.add(Kernel::kCollision, 2.0);
  p.add(Kernel::kStreaming, 1.0);
  p.add(Kernel::kCopyDistribution, 1.0);
  double total = 0.0;
  for (const auto& row : p.ranked_rows()) total += row.percent_of_total;
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(KernelProfiler, PaperIndicesMatchAlgorithmOrder) {
  EXPECT_EQ(kernel_paper_index(Kernel::kBendingForce), 1);
  EXPECT_EQ(kernel_paper_index(Kernel::kSpreadForce), 4);
  EXPECT_EQ(kernel_paper_index(Kernel::kCollision), 5);
  EXPECT_EQ(kernel_paper_index(Kernel::kCopyDistribution), 9);
}

TEST(KernelProfiler, KernelNamesMatchPaper) {
  EXPECT_EQ(kernel_name(Kernel::kCollision), "compute_fluid_collision");
  EXPECT_EQ(kernel_name(Kernel::kStreaming),
            "stream_fluid_velocity_distribution");
  EXPECT_EQ(kernel_name(Kernel::kSpreadForce),
            "spread_force_from_fibers_to_fluid");
}

TEST(KernelProfiler, ReportContainsAllKernels) {
  KernelProfiler p;
  p.add(Kernel::kCollision, 1.0);
  const std::string report = p.report();
  for (int k = 0; k < kNumKernels; ++k) {
    EXPECT_NE(report.find(std::string(kernel_name(static_cast<Kernel>(k)))),
              std::string::npos);
  }
}

TEST(KernelProfiler, ClearResets) {
  KernelProfiler p;
  p.add(Kernel::kCollision, 1.0);
  p.clear();
  EXPECT_EQ(p.total_seconds(), 0.0);
}

TEST(KernelProfiler, EmptyReportHasZeroPercent) {
  KernelProfiler p;
  for (const auto& row : p.ranked_rows()) {
    EXPECT_EQ(row.percent_of_total, 0.0);
  }
}

}  // namespace
}  // namespace lbmib
