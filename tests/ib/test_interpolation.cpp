#include <gtest/gtest.h>

#include "ib/fiber_sheet.hpp"
#include "ib/interpolation.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

TEST(Interpolation, ConstantFieldIsExact) {
  // Partition of unity: a uniform velocity field interpolates exactly at
  // any off-grid position.
  const Vec3 u0{0.03, -0.01, 0.02};
  FluidGrid grid(12, 12, 12, 1.0, u0);
  for (const Vec3& pos :
       {Vec3{5.5, 5.5, 5.5}, Vec3{3.21, 7.89, 4.5}, Vec3{0.1, 11.9, 6.0}}) {
    const Vec3 u = interpolate_velocity(grid, pos);
    EXPECT_NEAR(u.x, u0.x, 1e-13);
    EXPECT_NEAR(u.y, u0.y, 1e-13);
    EXPECT_NEAR(u.z, u0.z, 1e-13);
  }
}

TEST(Interpolation, LinearFieldIsExactByZeroFirstMoment) {
  // phi4's zero first moment makes linear fields interpolate exactly away
  // from the periodic seam.
  FluidGrid grid(16, 16, 16);
  for (Index x = 0; x < 16; ++x) {
    for (Index y = 0; y < 16; ++y) {
      for (Index z = 0; z < 16; ++z) {
        grid.set_velocity(grid.index(x, y, z),
                          {0.01 * static_cast<Real>(x),
                           0.02 * static_cast<Real>(y),
                           -0.01 * static_cast<Real>(z)});
      }
    }
  }
  const Vec3 pos{7.3, 8.6, 5.1};
  const Vec3 u = interpolate_velocity(grid, pos);
  EXPECT_NEAR(u.x, 0.01 * pos.x, 1e-12);
  EXPECT_NEAR(u.y, 0.02 * pos.y, 1e-12);
  EXPECT_NEAR(u.z, -0.01 * pos.z, 1e-12);
}

TEST(Interpolation, ExactOnLatticePointOfSmoothField) {
  FluidGrid grid(12, 12, 12, 1.0, {0.05, 0.0, 0.0});
  const Vec3 u = interpolate_velocity(grid, {6.0, 6.0, 6.0});
  EXPECT_NEAR(u.x, 0.05, 1e-13);
}

TEST(MoveFibers, AdvectsWithLocalVelocity) {
  const Vec3 u0{0.1, -0.05, 0.025};
  FluidGrid grid(12, 12, 12, 1.0, u0);
  FiberSheet sheet(3, 3, 2.0, 2.0, {5.0, 5.0, 5.0}, 0.0, 0.0);
  const Vec3 before = sheet.position(1, 1);
  move_fibers(sheet, grid, 0, 3);
  const Vec3 after = sheet.position(1, 1);
  EXPECT_NEAR(after.x - before.x, u0.x, 1e-13);
  EXPECT_NEAR(after.y - before.y, u0.y, 1e-13);
  EXPECT_NEAR(after.z - before.z, u0.z, 1e-13);
}

TEST(MoveFibers, RespectsTimestepScale) {
  const Vec3 u0{0.1, 0.0, 0.0};
  FluidGrid grid(12, 12, 12, 1.0, u0);
  FiberSheet sheet(2, 2, 1.0, 1.0, {5.0, 5.0, 5.0}, 0.0, 0.0);
  move_fibers(sheet, grid, 0, 2, 0.5);
  EXPECT_NEAR(sheet.position(0, 0).x, 5.05, 1e-13);
}

TEST(MoveFibers, PinnedNodesStayPut) {
  const Vec3 u0{0.1, 0.1, 0.1};
  FluidGrid grid(12, 12, 12, 1.0, u0);
  FiberSheet sheet(2, 3, 1.0, 2.0, {5.0, 5.0, 5.0}, 0.0, 0.0);
  sheet.apply_pin_mode(PinMode::kLeadingEdge);
  move_fibers(sheet, grid, 0, 2);
  EXPECT_EQ(sheet.position(0, 0), (Vec3{5.0, 5.0, 5.0}));  // pinned
  EXPECT_NE(sheet.position(0, 1), (Vec3{5.0, 5.0, 6.0}));  // moved
}

TEST(MoveFibers, FiberRangeOnlyMovesOwnedFibers) {
  const Vec3 u0{0.1, 0.0, 0.0};
  FluidGrid grid(12, 12, 12, 1.0, u0);
  FiberSheet sheet(3, 2, 2.0, 1.0, {5.0, 5.0, 5.0}, 0.0, 0.0);
  move_fibers(sheet, grid, 1, 2);  // only fiber 1
  EXPECT_DOUBLE_EQ(sheet.position(0, 0).x, 5.0);
  EXPECT_NEAR(sheet.position(1, 0).x, 5.1, 1e-13);
  EXPECT_DOUBLE_EQ(sheet.position(2, 0).x, 5.0);
}

TEST(MoveFibers, ZeroVelocityFieldLeavesSheetStill) {
  FluidGrid grid(12, 12, 12);
  FiberSheet sheet(3, 3, 2.0, 2.0, {5.0, 5.0, 5.0}, 0.0, 0.0);
  const Vec3 before = sheet.position(2, 2);
  move_fibers(sheet, grid, 0, 3);
  EXPECT_EQ(sheet.position(2, 2), before);
}

}  // namespace
}  // namespace lbmib
