// Tether (target-point) forces: soft anchoring of pinned nodes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/cube_solver.hpp"
#include "core/distributed_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"
#include "ib/fiber_forces.hpp"
#include "ib/fiber_sheet.hpp"

namespace lbmib {
namespace {

TEST(Tether, DefaultIsHardPin) {
  FiberSheet sheet(3, 3, 2.0, 2.0, {5.0, 5.0, 5.0}, 0.0, 0.0);
  sheet.apply_pin_mode(PinMode::kLeadingEdge);
  EXPECT_EQ(sheet.tether_coeff(), 0.0);
  EXPECT_TRUE(sheet.immobile(sheet.id(0, 0)));
  EXPECT_FALSE(sheet.immobile(sheet.id(0, 1)));
}

TEST(Tether, PositiveCoeffMakesPinnedNodesMobile) {
  FiberSheet sheet(3, 3, 2.0, 2.0, {5.0, 5.0, 5.0}, 0.0, 0.0);
  sheet.apply_pin_mode(PinMode::kLeadingEdge);
  sheet.set_tether_coeff(0.5);
  EXPECT_FALSE(sheet.immobile(sheet.id(0, 0)));
  EXPECT_TRUE(sheet.pinned(sheet.id(0, 0)));
}

TEST(Tether, AnchorsAreConstructionPositions) {
  FiberSheet sheet(2, 2, 1.0, 1.0, {3.0, 4.0, 5.0}, 0.0, 0.0);
  EXPECT_EQ(sheet.anchor(0), (Vec3{3.0, 4.0, 5.0}));
  sheet.position(0) += Vec3{1.0, 0.0, 0.0};
  EXPECT_EQ(sheet.anchor(0), (Vec3{3.0, 4.0, 5.0}));  // unchanged
}

TEST(Tether, RestoringForceIsProportionalToDisplacement) {
  FiberSheet sheet(2, 2, 1.0, 1.0, {}, 0.0, 0.0);
  sheet.set_pinned(0, true);
  sheet.set_tether_coeff(0.25);
  sheet.position(0) += Vec3{0.4, -0.2, 0.0};
  compute_all_fiber_forces(sheet);
  // Only the tether contributes here (no stretch: other nodes moved? they
  // didn't — stretch from displaced spacing exists; isolate by comparing
  // against a no-tether copy).
  FiberSheet ref(2, 2, 1.0, 1.0, {}, 0.0, 0.0);
  ref.set_pinned(0, true);
  ref.position(0) += Vec3{0.4, -0.2, 0.0};
  compute_all_fiber_forces(ref);
  const Vec3 tether = sheet.elastic_force(0) - ref.elastic_force(0);
  EXPECT_NEAR(tether.x, -0.25 * 0.4, 1e-14);
  EXPECT_NEAR(tether.y, 0.25 * 0.2, 1e-14);
  EXPECT_NEAR(tether.z, 0.0, 1e-14);
}

TEST(Tether, UnpinnedNodesFeelNoTether) {
  FiberSheet sheet(2, 2, 1.0, 1.0, {}, 0.0, 0.0);
  sheet.set_tether_coeff(1.0);
  sheet.position(3) += Vec3{0.5, 0.0, 0.0};
  FiberSheet ref(2, 2, 1.0, 1.0, {}, 0.0, 0.0);
  ref.position(3) += Vec3{0.5, 0.0, 0.0};
  compute_all_fiber_forces(sheet);
  compute_all_fiber_forces(ref);
  EXPECT_EQ(sheet.elastic_force(3), ref.elastic_force(3));
}

TEST(Tether, TetheredPlateStaysNearAnchorInFlow) {
  // A softly anchored plate drifts downstream but the tether holds it
  // near its anchor, unlike a free sheet which advects away.
  SimulationParams p = presets::tiny();
  p.initial_velocity = {0.03, 0.0, 0.0};
  p.pin_mode = PinMode::kCenter;
  p.num_fibers = 10;
  p.nodes_per_fiber = 10;
  p.tether_coeff = 0.5;
  SequentialSolver tethered(p);

  SimulationParams free_p = p;
  free_p.pin_mode = PinMode::kNone;
  SequentialSolver free_sheet(free_p);

  tethered.run(60);
  free_sheet.run(60);
  // Compare the drift of the anchored patch itself: the free sheet's
  // centre advects with the flow while the tether holds the anchored
  // nodes near their rest position.
  auto center_drift = [&](const FiberSheet& sheet) {
    Real drift = 0.0;
    Size count = 0;
    const FiberSheet& t = tethered.sheet();
    for (Size i = 0; i < sheet.num_nodes(); ++i) {
      if (!t.pinned(i)) continue;  // the same central patch in both runs
      drift += sheet.position(i).x - sheet.anchor(i).x;
      ++count;
    }
    return drift / static_cast<Real>(count);
  };
  const Real drift_tethered = center_drift(tethered.sheet());
  const Real drift_free = center_drift(free_sheet.sheet());
  EXPECT_LT(drift_tethered, 0.3 * drift_free);
  EXPECT_GT(drift_tethered, 0.0);  // soft, not rigid: it does move
}

TEST(Tether, TetheredNodesActuallyMove) {
  SimulationParams p = presets::tiny();
  p.initial_velocity = {0.03, 0.0, 0.0};
  p.pin_mode = PinMode::kLeadingEdge;
  p.tether_coeff = 0.1;
  SequentialSolver solver(p);
  solver.run(5);
  const Size pinned_node = solver.sheet().id(0, 0);
  EXPECT_GT(solver.sheet().position(pinned_node).x, p.sheet_origin.x);
}

TEST(Tether, SolversAgreeWithTether) {
  SimulationParams p = presets::tiny();
  p.initial_velocity = {0.02, 0.0, 0.0};
  p.pin_mode = PinMode::kCenter;
  p.tether_coeff = 0.3;
  SequentialSolver seq(p);
  seq.run(8);
  p.num_threads = 4;
  CubeSolver cube(p);
  cube.run(8);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
  DistributedSolver dist(p);
  dist.run(8);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-11);
}

TEST(Tether, AnchorLoadZeroAtRest) {
  FiberSheet sheet(4, 4, 3.0, 3.0, {5.0, 5.0, 5.0}, 0.05, 0.005);
  sheet.apply_pin_mode(PinMode::kLeadingEdge);
  sheet.set_tether_coeff(0.3);
  compute_all_fiber_forces(sheet);
  EXPECT_NEAR(norm(sheet.anchor_load()), 0.0, 1e-14);
}

TEST(Tether, AnchorLoadResistsTheFlow) {
  // A leading-edge-pinned sheet dragged downstream: the anchors carry a
  // load pointing downstream (+x) — the springs pull the anchors forward
  // while the anchors hold the sheet back.
  SimulationParams p = presets::tiny();
  p.initial_velocity = {0.03, 0.0, 0.0};
  p.pin_mode = PinMode::kLeadingEdge;
  p.stretching_coeff = 0.1;
  SequentialSolver solver(p);
  solver.run(30);
  compute_all_fiber_forces(solver.sheet());
  EXPECT_GT(solver.sheet().anchor_load().x, 1e-6);
}

TEST(Tether, TetheredAnchorLoadIsTetherTension) {
  // For a tethered sheet the mount load is the tether tension — which by
  // the global cancellation of internal spring forces also equals minus
  // the sheet's total elastic force.
  SimulationParams p = presets::tiny();
  p.initial_velocity = {0.02, 0.0, 0.0};
  p.pin_mode = PinMode::kCenter;
  p.tether_coeff = 0.2;
  SequentialSolver solver(p);
  solver.run(20);
  FiberSheet& sheet = solver.sheet();
  compute_all_fiber_forces(sheet);
  const Vec3 anchored = sheet.anchor_load();
  Vec3 tension{};
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    if (sheet.pinned(i)) {
      tension += 0.2 * (sheet.position(i) - sheet.anchor(i));
    }
  }
  EXPECT_NEAR(anchored.x, tension.x, 1e-14);
  const Vec3 total = sheet.total_elastic_force();
  EXPECT_NEAR(anchored.x, -total.x, 1e-12);
  EXPECT_NEAR(anchored.y, -total.y, 1e-12);
  EXPECT_NEAR(anchored.z, -total.z, 1e-12);
  // The mount is being dragged downstream.
  EXPECT_GT(anchored.x, 0.0);
}

TEST(Tether, NegativeCoeffRejected) {
  SimulationParams p = presets::tiny();
  p.tether_coeff = -0.1;
  EXPECT_THROW(p.validate(), Error);
}

}  // namespace
}  // namespace lbmib
