// Elastic energy diagnostics and their consistency with the force
// kernels (force = -gradient of energy).
#include <gtest/gtest.h>

#include <cmath>

#include "core/sequential_solver.hpp"
#include "ib/fiber_forces.hpp"
#include "ib/fiber_sheet.hpp"

namespace lbmib {
namespace {

TEST(ElasticEnergy, ZeroAtRest) {
  FiberSheet sheet(5, 5, 4.0, 4.0, {6.0, 6.0, 6.0}, 0.05, 0.01);
  EXPECT_EQ(sheet.stretching_energy(), 0.0);
  EXPECT_EQ(sheet.bending_energy(), 0.0);
  EXPECT_EQ(sheet.tether_energy(), 0.0);
  EXPECT_EQ(sheet.elastic_energy(), 0.0);
}

TEST(ElasticEnergy, StretchedPairEnergy) {
  FiberSheet sheet(1, 2, 1.0, 1.0, {}, 2.0, 0.0);  // rest length 1
  sheet.position(0, 1).z = 2.5;                    // stretch by 1.5
  EXPECT_NEAR(sheet.stretching_energy(), 0.5 * 2.0 * 1.5 * 1.5, 1e-14);
}

TEST(ElasticEnergy, BentTripleEnergy) {
  FiberSheet sheet(1, 3, 1.0, 2.0, {}, 0.0, 4.0);
  sheet.position(0, 1).x += 0.25;  // curvature magnitude 2 * 0.25 = 0.5
  EXPECT_NEAR(sheet.bending_energy(), 0.5 * 4.0 * 0.25, 1e-14);
}

TEST(ElasticEnergy, TetherEnergyOfDisplacedPin) {
  FiberSheet sheet(2, 2, 1.0, 1.0, {}, 0.0, 0.0);
  sheet.set_pinned(0, true);
  sheet.set_tether_coeff(0.5);
  sheet.position(0) += Vec3{0.3, 0.4, 0.0};  // |d| = 0.5
  EXPECT_NEAR(sheet.tether_energy(), 0.5 * 0.5 * 0.25, 1e-14);
}

TEST(ElasticEnergy, ForceIsNegativeEnergyGradient) {
  // Central-difference check of dE/dx against the force kernels for a
  // randomly deformed sheet.
  FiberSheet sheet(4, 4, 3.0, 3.0, {}, 0.7, 0.3);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i) += Vec3{0.05 * std::sin(3.1 * i),
                              0.04 * std::cos(2.3 * i),
                              0.03 * std::sin(1.7 * i)};
  }
  compute_all_fiber_forces(sheet);

  const Size probe = sheet.id(2, 1);
  const Real h = 1e-6;
  for (int axis = 0; axis < 3; ++axis) {
    FiberSheet plus = sheet, minus = sheet;
    plus.position(probe)[axis] += h;
    minus.position(probe)[axis] -= h;
    const Real dE =
        (plus.elastic_energy() - minus.elastic_energy()) / (2 * h);
    EXPECT_NEAR(sheet.elastic_force(probe)[axis], -dE, 1e-6)
        << "axis " << axis;
  }
}

TEST(ElasticEnergy, ViscousFluidDissipatesSheetEnergy) {
  // A deformed sheet released in quiescent fluid rings down: its elastic
  // energy must decrease over a viscous relaxation (the fluid takes the
  // energy and dissipates it).
  SimulationParams p = presets::tiny();
  p.initial_velocity = {};
  p.body_force = {};
  p.stretching_coeff = 0.1;
  p.bending_coeff = 0.01;
  SequentialSolver solver(p);
  FiberSheet& sheet = solver.sheet();
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i).x += 0.3 * std::sin(static_cast<Real>(i));
  }
  const Real e0 = sheet.elastic_energy();
  ASSERT_GT(e0, 0.0);
  solver.run(200);
  EXPECT_LT(sheet.elastic_energy(), 0.5 * e0);
}

}  // namespace
}  // namespace lbmib
