#include <gtest/gtest.h>

#include <cmath>

#include "ib/delta.hpp"

namespace lbmib {
namespace {

/// Sweep of continuous sub-grid offsets used by the property tests.
class DeltaOffsetTest : public ::testing::TestWithParam<double> {};

TEST_P(DeltaOffsetTest, Phi4PartitionOfUnity) {
  // sum_j phi(r - j) = 1 for any real r: the interpolation is exact for
  // constants.
  const double r = GetParam();
  double sum = 0.0;
  for (int j = -8; j <= 8; ++j) sum += phi4(r - j);
  EXPECT_NEAR(sum, 1.0, 1e-12) << "r=" << r;
}

TEST_P(DeltaOffsetTest, Phi4ZeroFirstMoment) {
  // sum_j (r - j) phi(r - j) = 0: the interpolation is exact for linears.
  const double r = GetParam();
  double sum = 0.0;
  for (int j = -8; j <= 8; ++j) sum += (r - j) * phi4(r - j);
  EXPECT_NEAR(sum, 0.0, 1e-12) << "r=" << r;
}

TEST_P(DeltaOffsetTest, Phi4EvenOddCondition) {
  // Peskin's even-odd condition: even and odd translates each sum to 1/2,
  // which suppresses grid-scale oscillations.
  const double r = GetParam();
  double even = 0.0, odd = 0.0;
  for (int j = -8; j <= 8; ++j) {
    if (j % 2 == 0) {
      even += phi4(r - j);
    } else {
      odd += phi4(r - j);
    }
  }
  EXPECT_NEAR(even, 0.5, 1e-12) << "r=" << r;
  EXPECT_NEAR(odd, 0.5, 1e-12) << "r=" << r;
}

TEST_P(DeltaOffsetTest, Phi3PartitionOfUnity) {
  const double r = GetParam();
  double sum = 0.0;
  for (int j = -8; j <= 8; ++j) sum += phi3(r - j);
  EXPECT_NEAR(sum, 1.0, 1e-12) << "r=" << r;
}

TEST_P(DeltaOffsetTest, Phi2PartitionOfUnity) {
  const double r = GetParam();
  double sum = 0.0;
  for (int j = -8; j <= 8; ++j) sum += phi2(r - j);
  EXPECT_NEAR(sum, 1.0, 1e-12) << "r=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, DeltaOffsetTest,
    ::testing::Values(0.0, 0.1, 0.25, 0.3333333, 0.5, 0.70001, 0.875, 0.999,
                      -0.4, -0.9, 2.3, -3.7),
    [](const auto& info) {
      std::string s = std::to_string(info.param);
      for (char& c : s) {
        if (c == '.' || c == '-') c = '_';
      }
      return "r" + s;
    });

TEST(Delta, Phi4IsEven) {
  for (double r : {0.1, 0.5, 0.9, 1.3, 1.9}) {
    EXPECT_DOUBLE_EQ(phi4(r), phi4(-r));
  }
}

TEST(Delta, Phi4SupportIsTwo) {
  EXPECT_EQ(phi4(2.0), 0.0);
  EXPECT_EQ(phi4(-2.0), 0.0);
  EXPECT_EQ(phi4(2.5), 0.0);
  EXPECT_GT(phi4(1.999), 0.0);
}

TEST(Delta, Phi4PeakAtOrigin) {
  EXPECT_NEAR(phi4(0.0), 0.5, 1e-15);
  EXPECT_GT(phi4(0.0), phi4(0.5));
  EXPECT_GT(phi4(0.5), phi4(1.0));
  EXPECT_GT(phi4(1.0), phi4(1.5));
}

TEST(Delta, Phi4ContinuousAtBreakpoint) {
  // The two branches must agree at |r| = 1.
  const double eps = 1e-9;
  EXPECT_NEAR(phi4(1.0 - eps), phi4(1.0 + eps), 1e-7);
}

TEST(Delta, Phi4NonNegative) {
  for (double r = -2.5; r <= 2.5; r += 0.01) {
    EXPECT_GE(phi4(r), 0.0) << "r=" << r;
  }
}

TEST(Delta, Phi3SupportAndPeak) {
  EXPECT_EQ(phi3(1.5), 0.0);
  EXPECT_GT(phi3(1.49), 0.0);
  EXPECT_NEAR(phi3(0.0), 2.0 / 3.0, 1e-15);
}

TEST(Delta, Phi2IsHatFunction) {
  EXPECT_DOUBLE_EQ(phi2(0.0), 1.0);
  EXPECT_DOUBLE_EQ(phi2(0.5), 0.5);
  EXPECT_DOUBLE_EQ(phi2(1.0), 0.0);
  EXPECT_DOUBLE_EQ(phi2(-0.25), 0.75);
}

TEST(Delta, DispatcherMatchesDirectFunctions) {
  for (double r : {0.0, 0.3, 0.8, 1.2}) {
    EXPECT_EQ(phi(DeltaKernel::kPhi2, r), phi2(r));
    EXPECT_EQ(phi(DeltaKernel::kPhi3, r), phi3(r));
    EXPECT_EQ(phi(DeltaKernel::kPhi4, r), phi4(r));
  }
}

TEST(Delta, SupportRadii) {
  EXPECT_EQ(support_radius(DeltaKernel::kPhi2), 1);
  EXPECT_EQ(support_radius(DeltaKernel::kPhi4), 2);
}

TEST(Delta, TensorProduct3D) {
  EXPECT_NEAR(delta3(0.0, 0.0, 0.0), 0.125, 1e-15);  // 0.5^3
  EXPECT_EQ(delta3(2.0, 0.0, 0.0), 0.0);
  EXPECT_NEAR(delta3(0.5, 0.5, 0.5), std::pow(phi4(0.5), 3.0), 1e-15);
}

TEST(Delta, TensorProductSumsToOneOver3DStencil) {
  // 4x4x4 influential domain weights sum to 1 for an arbitrary offset.
  const double ox = 0.37, oy = 0.81, oz = 0.12;
  double sum = 0.0;
  for (int a = -1; a <= 2; ++a) {
    for (int b = -1; b <= 2; ++b) {
      for (int c = -1; c <= 2; ++c) {
        sum += delta3(a - ox, b - oy, c - oz);
      }
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace lbmib
