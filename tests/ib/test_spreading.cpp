#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ib/fiber_forces.hpp"
#include "ib/fiber_sheet.hpp"
#include "ib/spreading.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

FiberSheet perturbed_sheet(std::uint64_t seed) {
  FiberSheet sheet(5, 5, 4.0, 4.0, {6.0, 6.0, 6.0}, 0.05, 0.01);
  SplitMix64 rng(seed);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i) += Vec3{rng.next_double(-0.3, 0.3),
                              rng.next_double(-0.3, 0.3),
                              rng.next_double(-0.3, 0.3)};
  }
  compute_all_fiber_forces(sheet);
  return sheet;
}

TEST(InfluenceDomainTest, CoversFourNodesPerAxis) {
  const InfluenceDomain d = influence_domain({5.3, 7.9, 2.0});
  EXPECT_EQ(d.base[0], 4);  // floor(5.3) - 1
  EXPECT_EQ(d.base[1], 6);
  EXPECT_EQ(d.base[2], 1);
}

TEST(InfluenceDomainTest, WeightsArePartitionOfUnityPerAxis) {
  const InfluenceDomain d = influence_domain({5.37, 7.91, 2.24});
  auto sum4 = [](const Real* w) { return w[0] + w[1] + w[2] + w[3]; };
  EXPECT_NEAR(sum4(d.wx), 1.0, 1e-12);
  EXPECT_NEAR(sum4(d.wy), 1.0, 1e-12);
  EXPECT_NEAR(sum4(d.wz), 1.0, 1e-12);
}

TEST(InfluenceDomainTest, OnGridPointTouchesThreeNodes) {
  // At an exact lattice coordinate phi4(-2) = 0, so only 3 of the 4
  // per-axis weights are non-zero, centered on the point.
  const InfluenceDomain d = influence_domain({5.0, 5.0, 5.0});
  EXPECT_NEAR(d.wx[0] + d.wx[1] + d.wx[2] + d.wx[3], 1.0, 1e-12);
  EXPECT_NEAR(d.wx[1], 0.5, 1e-12);  // phi4(0)
}

TEST(Spreading, TotalSpreadForceEqualsTotalFiberForceTimesArea) {
  // Conservation: the delta weights sum to one, so the fluid receives
  // exactly area * sum of elastic forces.
  FluidGrid grid(16, 16, 16);
  grid.reset_forces({});
  FiberSheet sheet = perturbed_sheet(1);
  spread_force(sheet, grid, 0, sheet.num_fibers());

  Vec3 fluid_total{};
  for (Size n = 0; n < grid.num_nodes(); ++n) fluid_total += grid.force(n);
  Vec3 fiber_total{};
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    fiber_total += sheet.elastic_force(i);
  }
  fiber_total *= sheet.node_area();
  EXPECT_NEAR(fluid_total.x, fiber_total.x, 1e-12);
  EXPECT_NEAR(fluid_total.y, fiber_total.y, 1e-12);
  EXPECT_NEAR(fluid_total.z, fiber_total.z, 1e-12);
}

TEST(Spreading, ForceIsLocalizedToInfluentialDomain) {
  FluidGrid grid(16, 16, 16);
  grid.reset_forces({});
  // One-node "sheet" with a known force at (8.5, 8.5, 8.5).
  FiberSheet sheet(1, 1, 1.0, 1.0, {8.5, 8.5, 8.5}, 0.0, 0.0);
  sheet.elastic_force(0) = {1.0, 0.0, 0.0};
  spread_force(sheet, grid, 0, 1);
  for (Index x = 0; x < 16; ++x) {
    for (Index y = 0; y < 16; ++y) {
      for (Index z = 0; z < 16; ++z) {
        const bool inside = (x >= 7 && x <= 10) && (y >= 7 && y <= 10) &&
                            (z >= 7 && z <= 10);
        const Real fx = grid.fx(grid.index(x, y, z));
        if (inside) {
          EXPECT_GT(fx, 0.0) << x << "," << y << "," << z;
        } else {
          EXPECT_EQ(fx, 0.0) << x << "," << y << "," << z;
        }
      }
    }
  }
}

TEST(Spreading, PeriodicWrapNearBoundary) {
  FluidGrid grid(8, 8, 8);
  grid.reset_forces({});
  FiberSheet sheet(1, 1, 1.0, 1.0, {0.5, 4.0, 4.0}, 0.0, 0.0);
  sheet.elastic_force(0) = {0.0, 0.0, 1.0};
  spread_force(sheet, grid, 0, 1);
  // base x = floor(0.5) - 1 = -1 -> wraps to 7.
  EXPECT_GT(grid.fz(grid.index(7, 4, 4)), 0.0);
  Vec3 total{};
  for (Size n = 0; n < grid.num_nodes(); ++n) total += grid.force(n);
  EXPECT_NEAR(total.z, sheet.node_area() * 1.0, 1e-12);
}

TEST(Spreading, AtomicVariantMatchesPlain) {
  FluidGrid a(16, 16, 16), b(16, 16, 16);
  a.reset_forces({});
  b.reset_forces({});
  FiberSheet sheet = perturbed_sheet(2);
  spread_force(sheet, a, 0, sheet.num_fibers());
  spread_force_atomic(sheet, b, 0, sheet.num_fibers());
  for (Size n = 0; n < a.num_nodes(); ++n) {
    EXPECT_NEAR(a.fx(n), b.fx(n), 1e-15);
    EXPECT_NEAR(a.fy(n), b.fy(n), 1e-15);
    EXPECT_NEAR(a.fz(n), b.fz(n), 1e-15);
  }
}

TEST(Spreading, FiberRangeDecompositionMatchesFullSweep) {
  FluidGrid a(16, 16, 16), b(16, 16, 16);
  a.reset_forces({});
  b.reset_forces({});
  FiberSheet sheet = perturbed_sheet(3);
  spread_force(sheet, a, 0, 5);
  spread_force(sheet, b, 0, 2);
  spread_force(sheet, b, 2, 3);
  spread_force(sheet, b, 3, 5);
  for (Size n = 0; n < a.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(a.fx(n), b.fx(n));
  }
}

TEST(Spreading, PreservesExistingBodyForce) {
  FluidGrid grid(16, 16, 16);
  grid.reset_forces({1e-4, 0.0, 0.0});
  FiberSheet sheet = perturbed_sheet(4);
  spread_force(sheet, grid, 0, sheet.num_fibers());
  // A node far from the sheet keeps exactly the body force.
  EXPECT_DOUBLE_EQ(grid.fx(grid.index(0, 0, 0)), 1e-4);
}

}  // namespace
}  // namespace lbmib
