#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ib/fiber_sheet.hpp"

namespace lbmib {
namespace {

TEST(FiberSheet, PaperExampleDimensions) {
  // Figure 4: "A flexible fiber sheet consisting of 8 fibers. Each fiber
  // has 5 fiber nodes."
  FiberSheet sheet(8, 5, 7.0, 4.0, {1.0, 2.0, 3.0}, 0.01, 0.001);
  EXPECT_EQ(sheet.num_fibers(), 8);
  EXPECT_EQ(sheet.nodes_per_fiber(), 5);
  EXPECT_EQ(sheet.num_nodes(), 40u);
}

TEST(FiberSheet, NodeIdsAreFiberMajor) {
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  EXPECT_EQ(sheet.id(0, 0), 0u);
  EXPECT_EQ(sheet.id(0, 3), 3u);
  EXPECT_EQ(sheet.id(1, 0), 4u);
  EXPECT_EQ(sheet.id(2, 3), 11u);
}

TEST(FiberSheet, InitialGeometryIsRegularGridInYZ) {
  const Vec3 origin{5.0, 3.0, 2.0};
  FiberSheet sheet(3, 5, 4.0, 8.0, origin, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(sheet.ds_across(), 2.0);  // 4.0 / (3-1)
  EXPECT_DOUBLE_EQ(sheet.ds_along(), 2.0);   // 8.0 / (5-1)
  for (Index f = 0; f < 3; ++f) {
    for (Index j = 0; j < 5; ++j) {
      const Vec3& p = sheet.position(f, j);
      EXPECT_DOUBLE_EQ(p.x, 5.0);
      EXPECT_DOUBLE_EQ(p.y, 3.0 + 2.0 * f);
      EXPECT_DOUBLE_EQ(p.z, 2.0 + 2.0 * j);
    }
  }
}

TEST(FiberSheet, RejectsMixedEmptyDimensions) {
  EXPECT_THROW(FiberSheet(0, 5, 1.0, 1.0, {}, 0.0, 0.0), Error);
  EXPECT_THROW(FiberSheet(5, 0, 1.0, 1.0, {}, 0.0, 0.0), Error);
  EXPECT_THROW(FiberSheet(-1, 5, 1.0, 1.0, {}, 0.0, 0.0), Error);
}

TEST(FiberSheet, AllowsFullyEmptySheet) {
  FiberSheet sheet(0, 0, 0.0, 0.0, {}, 0.0, 0.0);
  EXPECT_EQ(sheet.num_nodes(), 0u);
  EXPECT_EQ(sheet.centroid(), Vec3{});
  EXPECT_EQ(sheet.total_elastic_force(), Vec3{});
}

TEST(FiberSheet, ForcesStartZero) {
  FiberSheet sheet(4, 4, 3.0, 3.0, {}, 0.01, 0.001);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    EXPECT_EQ(sheet.bending_force(i), Vec3{});
    EXPECT_EQ(sheet.stretching_force(i), Vec3{});
    EXPECT_EQ(sheet.elastic_force(i), Vec3{});
  }
}

TEST(FiberSheet, NoPinByDefault) {
  FiberSheet sheet(4, 4, 3.0, 3.0, {}, 0.0, 0.0);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    EXPECT_FALSE(sheet.pinned(i));
  }
}

TEST(FiberSheet, LeadingEdgePinsFirstColumn) {
  FiberSheet sheet(4, 5, 3.0, 4.0, {}, 0.0, 0.0);
  sheet.apply_pin_mode(PinMode::kLeadingEdge);
  for (Index f = 0; f < 4; ++f) {
    EXPECT_TRUE(sheet.pinned(sheet.id(f, 0)));
    for (Index j = 1; j < 5; ++j) {
      EXPECT_FALSE(sheet.pinned(sheet.id(f, j)));
    }
  }
}

TEST(FiberSheet, CenterPinFastensMiddleRegion) {
  FiberSheet sheet(10, 10, 9.0, 9.0, {}, 0.0, 0.0);
  sheet.apply_pin_mode(PinMode::kCenter);
  // The central node is pinned; the corners are free.
  EXPECT_TRUE(sheet.pinned(sheet.id(5, 5)));
  EXPECT_FALSE(sheet.pinned(sheet.id(0, 0)));
  EXPECT_FALSE(sheet.pinned(sheet.id(9, 9)));
  // Some nodes are pinned, but not all.
  Size pinned = 0;
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    if (sheet.pinned(i)) ++pinned;
  }
  EXPECT_GT(pinned, 0u);
  EXPECT_LT(pinned, sheet.num_nodes());
}

TEST(FiberSheet, CentroidOfRegularSheet) {
  FiberSheet sheet(3, 3, 2.0, 2.0, {1.0, 0.0, 0.0}, 0.0, 0.0);
  const Vec3 c = sheet.centroid();
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);  // middle of [0, 2]
  EXPECT_DOUBLE_EQ(c.z, 1.0);
}

TEST(FiberSheet, NodeArea) {
  FiberSheet sheet(5, 3, 8.0, 4.0, {}, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(sheet.node_area(), 2.0 * 2.0);
}

TEST(FiberSheet, ConstructFromParams) {
  SimulationParams p = presets::tiny();
  p.pin_mode = PinMode::kLeadingEdge;
  FiberSheet sheet(p);
  EXPECT_EQ(sheet.num_fibers(), p.num_fibers);
  EXPECT_EQ(sheet.nodes_per_fiber(), p.nodes_per_fiber);
  EXPECT_TRUE(sheet.pinned(sheet.id(0, 0)));
  EXPECT_DOUBLE_EQ(sheet.stretching_coeff(), p.stretching_coeff);
  EXPECT_DOUBLE_EQ(sheet.bending_coeff(), p.bending_coeff);
}

TEST(FiberSheet, SingleNodeSheetUsesFullExtentAsSpacing) {
  FiberSheet sheet(1, 1, 3.0, 5.0, {}, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(sheet.ds_across(), 3.0);
  EXPECT_DOUBLE_EQ(sheet.ds_along(), 5.0);
}

}  // namespace
}  // namespace lbmib
