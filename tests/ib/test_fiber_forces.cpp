#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ib/fiber_forces.hpp"
#include "ib/fiber_sheet.hpp"

namespace lbmib {
namespace {

FiberSheet make_sheet(Index nf = 6, Index nn = 6) {
  // spacing 1.0 in both directions
  return FiberSheet(nf, nn, static_cast<Real>(nf - 1),
                    static_cast<Real>(nn - 1), {10.0, 10.0, 10.0}, 0.05,
                    0.01);
}

void perturb(FiberSheet& sheet, std::uint64_t seed, Real amplitude = 0.3) {
  SplitMix64 rng(seed);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i) += Vec3{rng.next_double(-amplitude, amplitude),
                              rng.next_double(-amplitude, amplitude),
                              rng.next_double(-amplitude, amplitude)};
  }
}

TEST(FiberForces, RestConfigurationHasZeroForce) {
  FiberSheet sheet = make_sheet();
  compute_all_fiber_forces(sheet);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    EXPECT_NEAR(norm(sheet.bending_force(i)), 0.0, 1e-14) << i;
    EXPECT_NEAR(norm(sheet.stretching_force(i)), 0.0, 1e-14) << i;
    EXPECT_NEAR(norm(sheet.elastic_force(i)), 0.0, 1e-14) << i;
  }
}

TEST(FiberForces, StretchingTotalIsZeroNewtonThirdLaw) {
  // Internal spring forces must sum to zero over the sheet.
  FiberSheet sheet = make_sheet();
  perturb(sheet, 1);
  compute_stretching_force(sheet, 0, sheet.num_fibers());
  Vec3 total{};
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    total += sheet.stretching_force(i);
  }
  EXPECT_NEAR(norm(total), 0.0, 1e-12);
}

TEST(FiberForces, BendingTotalIsZeroNewtonThirdLaw) {
  // F_b = -k_b D2^T (D2 X), and every row of D2 sums to zero, so the
  // total bending force vanishes exactly — even with free ends.
  FiberSheet sheet = make_sheet();
  perturb(sheet, 2);
  compute_bending_force(sheet, 0, sheet.num_fibers());
  Vec3 total{};
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    total += sheet.bending_force(i);
  }
  EXPECT_NEAR(norm(total), 0.0, 1e-12);
}

TEST(FiberForces, BendingFirstMomentIsZero) {
  // D2 annihilates linear functions, so bending exerts no net torque-free
  // translation bias: sum_i i * F_b(i) along a single fiber vanishes.
  FiberSheet sheet(1, 9, 1.0, 8.0, {}, 0.0, 1.0);
  SplitMix64 rng(11);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i) += Vec3{rng.next_double(-0.2, 0.2),
                              rng.next_double(-0.2, 0.2),
                              rng.next_double(-0.2, 0.2)};
  }
  compute_bending_force(sheet, 0, 1);
  Vec3 moment{};
  for (Index j = 0; j < 9; ++j) {
    moment += static_cast<Real>(j) * sheet.bending_force(sheet.id(0, j));
  }
  EXPECT_NEAR(norm(moment), 0.0, 1e-12);
}

TEST(FiberForces, StretchedPairPullsTogether) {
  // Two-node fiber stretched beyond rest length: forces point inward.
  FiberSheet sheet(1, 2, 1.0, 1.0, {0.0, 0.0, 0.0}, 1.0, 0.0);
  sheet.position(0, 1).z = 3.0;  // rest length 1, actual 3
  compute_stretching_force(sheet, 0, 1);
  EXPECT_GT(sheet.stretching_force(sheet.id(0, 0)).z, 0.0);
  EXPECT_LT(sheet.stretching_force(sheet.id(0, 1)).z, 0.0);
  // Magnitude: ks * (3 - 1) = 2.
  EXPECT_NEAR(sheet.stretching_force(sheet.id(0, 0)).z, 2.0, 1e-12);
}

TEST(FiberForces, CompressedPairPushesApart) {
  FiberSheet sheet(1, 2, 1.0, 1.0, {0.0, 0.0, 0.0}, 1.0, 0.0);
  sheet.position(0, 1).z = 0.25;
  compute_stretching_force(sheet, 0, 1);
  EXPECT_LT(sheet.stretching_force(sheet.id(0, 0)).z, 0.0);
  EXPECT_GT(sheet.stretching_force(sheet.id(0, 1)).z, 0.0);
}

TEST(FiberForces, StretchingScalesLinearlyWithCoefficient) {
  FiberSheet a(4, 4, 3.0, 3.0, {}, 0.1, 0.0);
  FiberSheet b(4, 4, 3.0, 3.0, {}, 0.2, 0.0);
  // identical perturbation
  for (Size i = 0; i < a.num_nodes(); ++i) {
    const Vec3 d{0.01 * static_cast<Real>(i % 3),
                 -0.02 * static_cast<Real>(i % 2), 0.015};
    a.position(i) += d;
    b.position(i) += d;
  }
  compute_stretching_force(a, 0, 4);
  compute_stretching_force(b, 0, 4);
  for (Size i = 0; i < a.num_nodes(); ++i) {
    EXPECT_NEAR(b.stretching_force(i).x, 2.0 * a.stretching_force(i).x,
                1e-12);
    EXPECT_NEAR(b.stretching_force(i).y, 2.0 * a.stretching_force(i).y,
                1e-12);
    EXPECT_NEAR(b.stretching_force(i).z, 2.0 * a.stretching_force(i).z,
                1e-12);
  }
}

TEST(FiberForces, BendingOpposesCurvature) {
  // Displace one interior node of a straight fiber; bending must push it
  // back toward the line.
  FiberSheet sheet(1, 7, 1.0, 6.0, {0.0, 0.0, 0.0}, 0.0, 1.0);
  const Size mid = sheet.id(0, 3);
  sheet.position(mid).x += 0.5;
  compute_bending_force(sheet, 0, 1);
  EXPECT_LT(sheet.bending_force(mid).x, 0.0);
}

TEST(FiberForces, BendingUsesBothDirections) {
  // A node displaced on a 6x6 sheet receives restoring force from the
  // along-fiber and across-fiber stencils; a 1-fiber sheet only from one.
  FiberSheet sheet = make_sheet(6, 6);
  const Size mid = sheet.id(3, 3);
  sheet.position(mid).x += 0.5;
  compute_bending_force(sheet, 0, 6);
  FiberSheet line(1, 6, 1.0, 5.0, {10.0, 10.0, 10.0}, 0.05, 0.01);
  line.position(line.id(0, 3)).x += 0.5;
  compute_bending_force(line, 0, 1);
  EXPECT_NEAR(sheet.bending_force(mid).x,
              2.0 * line.bending_force(line.id(0, 3)).x, 1e-12);
}

TEST(FiberForces, TranslationInvariance) {
  FiberSheet a = make_sheet();
  FiberSheet b = make_sheet();
  perturb(a, 5);
  for (Size i = 0; i < a.num_nodes(); ++i) {
    b.position(i) = a.position(i) + Vec3{100.0, -50.0, 25.0};
  }
  compute_all_fiber_forces(a);
  compute_all_fiber_forces(b);
  for (Size i = 0; i < a.num_nodes(); ++i) {
    EXPECT_NEAR(a.elastic_force(i).x, b.elastic_force(i).x, 1e-10);
    EXPECT_NEAR(a.elastic_force(i).y, b.elastic_force(i).y, 1e-10);
    EXPECT_NEAR(a.elastic_force(i).z, b.elastic_force(i).z, 1e-10);
  }
}

TEST(FiberForces, ElasticIsSumOfBendingAndStretching) {
  FiberSheet sheet = make_sheet();
  perturb(sheet, 6);
  compute_all_fiber_forces(sheet);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    const Vec3 sum = sheet.bending_force(i) + sheet.stretching_force(i);
    EXPECT_EQ(sheet.elastic_force(i), sum);
  }
}

TEST(FiberForces, FiberRangePartitioningMatchesFullSweep) {
  FiberSheet whole = make_sheet();
  FiberSheet parts = make_sheet();
  perturb(whole, 7);
  for (Size i = 0; i < whole.num_nodes(); ++i) {
    parts.position(i) = whole.position(i);
  }
  compute_all_fiber_forces(whole);
  // parts: compute fiber-by-fiber in arbitrary order
  for (Index f : {5, 0, 3, 1, 4, 2}) {
    compute_bending_force(parts, f, f + 1);
    compute_stretching_force(parts, f, f + 1);
    compute_elastic_force(parts, f, f + 1);
  }
  for (Size i = 0; i < whole.num_nodes(); ++i) {
    EXPECT_EQ(whole.elastic_force(i), parts.elastic_force(i));
  }
}

TEST(FiberForces, BendingIsLocalToTwoNeighbours) {
  // Displacing one node changes bending forces only within two nodes of
  // it (the stencil reach); nodes further away stay force-free.
  FiberSheet sheet(1, 9, 1.0, 8.0, {}, 0.0, 1.0);
  sheet.position(sheet.id(0, 4)).y += 0.3;  // bend the middle
  compute_bending_force(sheet, 0, 1);
  for (Index j = 0; j < 9; ++j) {
    const Real f = norm(sheet.bending_force(sheet.id(0, j)));
    if (j >= 2 && j <= 6) {
      EXPECT_GT(f, 0.0) << "j=" << j;
    } else {
      EXPECT_EQ(f, 0.0) << "j=" << j;
    }
  }
}

TEST(FiberForces, InteriorBendingMatchesFivePointStencil) {
  // Away from ends the adjoint form reduces to the classic 5-point
  // fourth difference.
  FiberSheet sheet(1, 9, 1.0, 8.0, {}, 0.0, 0.7);
  SplitMix64 rng(13);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i) += Vec3{rng.next_double(-0.2, 0.2),
                              rng.next_double(-0.2, 0.2), 0.0};
  }
  compute_bending_force(sheet, 0, 1);
  for (Index j = 2; j <= 6; ++j) {
    const Vec3 d4 = sheet.position(0, j - 2) -
                    4.0 * sheet.position(0, j - 1) +
                    6.0 * sheet.position(0, j) -
                    4.0 * sheet.position(0, j + 1) +
                    sheet.position(0, j + 2);
    const Vec3 expect = -0.7 * d4;
    const Vec3 got = sheet.bending_force(sheet.id(0, j));
    EXPECT_NEAR(got.x, expect.x, 1e-12) << "j=" << j;
    EXPECT_NEAR(got.y, expect.y, 1e-12) << "j=" << j;
  }
}

}  // namespace
}  // namespace lbmib
