#include <gtest/gtest.h>

#include "perfmodel/imbalance.hpp"

namespace lbmib::perfmodel {
namespace {

KernelProfiler with_total(double collision, double streaming = 0.0) {
  KernelProfiler p;
  p.add(Kernel::kCollision, collision);
  p.add(Kernel::kStreaming, streaming);
  return p;
}

TEST(Imbalance, PerfectBalanceIsZero) {
  std::vector<KernelProfiler> profiles = {with_total(1.0), with_total(1.0),
                                          with_total(1.0)};
  EXPECT_DOUBLE_EQ(total_imbalance(profiles), 0.0);
}

TEST(Imbalance, KnownSplit) {
  // times 2.0 and 1.0: max 2, avg 1.5 -> (2-1.5)/2 = 0.25.
  std::vector<KernelProfiler> profiles = {with_total(2.0), with_total(1.0)};
  EXPECT_DOUBLE_EQ(total_imbalance(profiles), 0.25);
}

TEST(Imbalance, OneIdleThread) {
  std::vector<KernelProfiler> profiles = {with_total(1.0), with_total(0.0)};
  EXPECT_DOUBLE_EQ(total_imbalance(profiles), 0.5);
}

TEST(Imbalance, EmptyAndZeroProfilesAreZero) {
  EXPECT_EQ(total_imbalance({}), 0.0);
  std::vector<KernelProfiler> zeros(3);
  EXPECT_EQ(total_imbalance(zeros), 0.0);
}

TEST(Imbalance, PerKernelMetric) {
  std::vector<KernelProfiler> profiles = {with_total(2.0, 1.0),
                                          with_total(2.0, 3.0)};
  EXPECT_DOUBLE_EQ(kernel_imbalance(profiles, Kernel::kCollision), 0.0);
  EXPECT_DOUBLE_EQ(kernel_imbalance(profiles, Kernel::kStreaming),
                   (3.0 - 2.0) / 3.0);
}

TEST(Imbalance, TotalUsesSumOfKernels) {
  // Thread A: 2+2=4; thread B: 3+3=6. max 6, avg 5 -> 1/6.
  std::vector<KernelProfiler> profiles = {with_total(2.0, 2.0),
                                          with_total(3.0, 3.0)};
  EXPECT_NEAR(total_imbalance(profiles), 1.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace lbmib::perfmodel
