#include <gtest/gtest.h>

#include "perfmodel/access_trace.hpp"
#include "perfmodel/locality.hpp"

namespace lbmib::perfmodel {
namespace {

TraceConfig small_config() {
  TraceConfig cfg;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 16;
  cfg.cube_size = 4;
  cfg.num_threads = 1;
  cfg.tid = 0;
  return cfg;
}

TEST(AccessTrace, TracesAreDeterministic) {
  const TraceConfig cfg = small_config();
  CacheHierarchy a = CacheHierarchy::opteron6380();
  CacheHierarchy b = CacheHierarchy::opteron6380();
  trace_timestep(a, Layout::kPlanar, cfg);
  trace_timestep(b, Layout::kPlanar, cfg);
  EXPECT_EQ(a.l1().accesses(), b.l1().accesses());
  EXPECT_EQ(a.l1().misses(), b.l1().misses());
  EXPECT_EQ(a.l2().misses(), b.l2().misses());
}

TEST(AccessTrace, PlanarAndCubeTouchSameAccessCount) {
  // Same kernels, same node count: the number of memory accesses must be
  // identical; only their order (and thus locality) differs.
  const TraceConfig cfg = small_config();
  CacheHierarchy planar = CacheHierarchy::opteron6380();
  CacheHierarchy cube = CacheHierarchy::opteron6380();
  trace_timestep(planar, Layout::kPlanar, cfg);
  trace_timestep(cube, Layout::kCube, cfg);
  EXPECT_EQ(planar.l1().accesses(), cube.l1().accesses());
}

TEST(AccessTrace, CubeLayoutHasFewerL2Misses) {
  // The core claim behind the paper's Table II / Figure 8: the cube layout
  // has a smaller working set and better locality. Use the paper's Table I
  // grid (124 x 64 x 64) split over 8 threads so the per-thread working
  // set (~5.7 MB) exceeds L2 like the measured configuration; tiny grids
  // that fit L2 can't show the contrast.
  TraceConfig cfg;
  cfg.nx = 124;
  cfg.ny = 64;
  cfg.nz = 64;
  cfg.cube_size = 4;
  cfg.num_threads = 8;
  cfg.tid = 0;
  CacheHierarchy planar = CacheHierarchy::opteron6380();
  CacheHierarchy cube = CacheHierarchy::opteron6380();
  // Warm up one step, then measure a steady-state step.
  trace_timestep(planar, Layout::kPlanar, cfg);
  planar.reset_stats();
  trace_timestep(planar, Layout::kPlanar, cfg);
  trace_timestep(cube, Layout::kCube, cfg);
  cube.reset_stats();
  trace_timestep(cube, Layout::kCube, cfg);
  EXPECT_LT(cube.l2().misses(), planar.l2().misses());
}

TEST(AccessTrace, PerKernelTracesCoverPartitionOnly) {
  // Two threads: each replays half the accesses of the full sweep.
  TraceConfig whole = small_config();
  TraceConfig half = small_config();
  half.num_threads = 2;
  half.tid = 0;
  CacheHierarchy w = CacheHierarchy::opteron6380();
  CacheHierarchy h = CacheHierarchy::opteron6380();
  trace_collision_planar(w, whole);
  trace_collision_planar(h, half);
  EXPECT_EQ(w.l1().accesses(), 2 * h.l1().accesses());
}

TEST(AccessTrace, CubePartitionSplitsByCubes) {
  TraceConfig whole = small_config();
  TraceConfig half = small_config();
  half.num_threads = 2;
  half.tid = 1;
  CacheHierarchy w = CacheHierarchy::opteron6380();
  CacheHierarchy h = CacheHierarchy::opteron6380();
  trace_collision_cube(w, whole);
  trace_collision_cube(h, half);
  EXPECT_EQ(w.l1().accesses(), 2 * h.l1().accesses());
}

TEST(AccessTrace, WorkingSetShrinksWithThreads) {
  TraceConfig cfg = small_config();
  const Size ws1 = working_set_bytes(Layout::kPlanar, cfg);
  cfg.num_threads = 4;
  const Size ws4 = working_set_bytes(Layout::kPlanar, cfg);
  EXPECT_EQ(ws1, 4 * ws4);
}

TEST(AccessTrace, WorkingSetCountsAllFields) {
  TraceConfig cfg = small_config();
  // 45 Reals per node.
  EXPECT_EQ(working_set_bytes(Layout::kPlanar, cfg),
            static_cast<Size>(32 * 16 * 16) * 45 * sizeof(Real));
}

TEST(Locality, ReportsReproduceTableTwoShape) {
  // The paper's Table II on its own input (124 x 64 x 64): the planar
  // (OpenMP) layout's L2 miss rate is high (paper: > 25%) and roughly
  // flat in the core count, indicating poor locality, while the cube
  // layout is better at both levels. (Absolute L1 rates are higher than
  // PAPI's 1.75% because the trace carries only field traffic, not the
  // stack/loop loads that dilute hardware counters; see DESIGN.md.)
  const std::vector<int> cores = {4, 8};
  const auto planar_rows =
      table2_sweep(Layout::kPlanar, cores, 124, 64, 64, 4);
  const auto cube_rows = table2_sweep(Layout::kCube, cores, 124, 64, 64, 4);
  ASSERT_EQ(planar_rows.size(), 2u);
  for (Size i = 0; i < planar_rows.size(); ++i) {
    EXPECT_GT(planar_rows[i].l2_miss_rate, 0.25);
    EXPECT_GT(planar_rows[i].l2_miss_rate, cube_rows[i].l2_miss_rate);
    EXPECT_GT(planar_rows[i].l1_miss_rate, cube_rows[i].l1_miss_rate);
  }
  // Flat in the core count while the working set stays >> L2.
  EXPECT_NEAR(planar_rows[0].l2_miss_rate, planar_rows[1].l2_miss_rate,
              0.05);
}

TEST(AccessTrace, FiberTracesDisabledWithoutSheet) {
  const TraceConfig cfg = small_config();  // num_fibers = 0
  CacheHierarchy cache = CacheHierarchy::opteron6380();
  trace_spread(cache, Layout::kPlanar, cfg);
  trace_move(cache, Layout::kCube, cfg);
  EXPECT_EQ(cache.l1().accesses(), 0u);
}

TEST(AccessTrace, FiberTraceAccessCountsMatchKernelShape) {
  TraceConfig cfg = small_config();
  cfg.num_fibers = 4;
  cfg.nodes_per_fiber = 5;
  cfg.sheet_origin[0] = 10.0;
  cfg.sheet_origin[1] = 6.0;
  cfg.sheet_origin[2] = 6.0;
  CacheHierarchy cache = CacheHierarchy::opteron6380();
  trace_spread(cache, Layout::kPlanar, cfg);
  // Per fiber node: 1 Lagrangian range (48 B -> 1-2 lines) + 64 fluid
  // nodes x 3 components x 2 (read-modify-write).
  const Size nodes = 20;
  EXPECT_GE(cache.l1().accesses(), nodes * (64 * 3 * 2 + 1));
  EXPECT_LE(cache.l1().accesses(), nodes * (64 * 3 * 2 + 2));

  CacheHierarchy cache2 = CacheHierarchy::opteron6380();
  trace_move(cache2, Layout::kPlanar, cfg);
  // Move only reads: half the fluid accesses.
  EXPECT_GE(cache2.l1().accesses(), nodes * (64 * 3 + 1));
  EXPECT_LE(cache2.l1().accesses(), nodes * (64 * 3 + 2));
}

TEST(AccessTrace, FiberTracePartitionsByFiberBlocks) {
  TraceConfig whole = small_config();
  whole.num_fibers = 8;
  whole.nodes_per_fiber = 4;
  TraceConfig half = whole;
  half.num_threads = 2;
  half.tid = 1;
  CacheHierarchy w = CacheHierarchy::opteron6380();
  CacheHierarchy h = CacheHierarchy::opteron6380();
  trace_spread(w, Layout::kCube, whole);
  trace_spread(h, Layout::kCube, half);
  EXPECT_EQ(w.l1().accesses(), 2 * h.l1().accesses());
}

TEST(AccessTrace, TimestepIncludesFiberKernelsWhenConfigured) {
  TraceConfig without = small_config();
  TraceConfig with = small_config();
  with.num_fibers = 4;
  with.nodes_per_fiber = 4;
  CacheHierarchy a = CacheHierarchy::opteron6380();
  CacheHierarchy b = CacheHierarchy::opteron6380();
  trace_timestep(a, Layout::kPlanar, without);
  trace_timestep(b, Layout::kPlanar, with);
  EXPECT_GT(b.l1().accesses(), a.l1().accesses());
}

TEST(Locality, ToStringMentionsLayout) {
  TraceConfig cfg = small_config();
  const LocalityReport r = analyze_locality(Layout::kCube, cfg);
  EXPECT_NE(r.to_string().find("cube"), std::string::npos);
}

}  // namespace
}  // namespace lbmib::perfmodel
