// Roofline report tests: the analytic traffic table, the
// bound-classification math against synthetic peaks (no probe — the
// peaks are handed in, so the answers are exact), and the JSON shape
// that BENCH_step.json embeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "perfmodel/roofline.hpp"

namespace lbmib::perfmodel {
namespace {

TEST(Roofline, TrafficTableCoversTheHotKernels) {
  // The four fluid sweepers and the IB kernels must be modeled; the
  // O(1) pointer swap must not be.
  for (const char* name :
       {"collide_stream", "collide", "stream", "copy_df",
        "update_velocity", "spread", "move_fibers", "bending",
        "stretching", "elastic"}) {
    const KernelTraffic* t = kernel_traffic(name);
    ASSERT_NE(t, nullptr) << name;
    EXPECT_GT(t->bytes_per_unit, 0.0) << name;
    EXPECT_STREQ(t->span_name, name);
    const std::string unit = t->unit;
    EXPECT_TRUE(unit == "node" || unit == "point") << name;
  }
  EXPECT_EQ(kernel_traffic("swap_df"), nullptr);
  EXPECT_EQ(kernel_traffic("no_such_kernel"), nullptr);
  EXPECT_FALSE(kernel_traffic_table().empty());

  // D3Q19 fused sweep: 19 df reads + 19 df writes + force reads are
  // the compulsory floor; pure streaming moves bytes but no flops.
  EXPECT_GE(kernel_traffic("collide_stream")->bytes_per_unit,
            38 * 8.0);
  EXPECT_EQ(kernel_traffic("stream")->flops_per_unit, 0.0);
  EXPECT_GT(kernel_traffic("collide_stream")->flops_per_unit, 0.0);
}

TEST(Roofline, ClassifiesBandwidthVsComputeBound) {
  MachinePeaks peaks;
  peaks.gbps = 10.0;
  peaks.gflops = 100.0;  // balance = 10 flop/byte
  EXPECT_DOUBLE_EQ(peaks.balance(), 10.0);

  // collide_stream's AI (260 flops / 328 bytes ~ 0.79) sits far below
  // a 10 flop/byte balance: bandwidth-bound.
  KernelMeasurement m;
  m.name = "collide_stream";
  m.units = 1e6;  // node-steps
  const KernelTraffic* t = kernel_traffic(m.name);
  // Exactly half the bandwidth roof: bytes = 5 GB/s * seconds.
  m.seconds = t->bytes_per_unit * m.units / 5e9;

  const RooflineReport report =
      build_roofline({m}, peaks);
  ASSERT_EQ(report.rows.size(), 1u);
  const RooflineRow& r = report.rows[0];
  EXPECT_TRUE(r.bandwidth_bound);
  EXPECT_NEAR(r.ai, t->flops_per_unit / t->bytes_per_unit, 1e-12);
  EXPECT_NEAR(r.achieved_gbps, 5.0, 1e-9);
  EXPECT_NEAR(r.roof_fraction, 0.5, 1e-9);
  EXPECT_NEAR(r.model_gbytes, t->bytes_per_unit * m.units / 1e9,
              1e-12);

  // Same kernel against a bandwidth-rich machine (balance 0.1
  // flop/byte): now the flops ceiling binds.
  peaks.gbps = 1000.0;
  const RooflineRow& r2 = build_roofline({m}, peaks).rows[0];
  EXPECT_FALSE(r2.bandwidth_bound);
}

TEST(Roofline, DropsUnmodeledAndEmptyRowsAndSortsBySeconds) {
  MachinePeaks peaks;
  peaks.gbps = 10.0;
  peaks.gflops = 100.0;

  std::vector<KernelMeasurement> ms(4);
  ms[0].name = "spread";
  ms[0].seconds = 0.1;
  ms[0].units = 1e4;
  ms[1].name = "collide_stream";
  ms[1].seconds = 2.0;
  ms[1].units = 1e6;
  ms[2].name = "swap_df";  // no traffic model -> dropped
  ms[2].seconds = 1.0;
  ms[2].units = 1e6;
  ms[3].name = "update_velocity";  // no time measured -> dropped
  ms[3].seconds = 0.0;
  ms[3].units = 1e6;

  const RooflineReport report = build_roofline(ms, peaks);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].kernel, "collide_stream");
  EXPECT_EQ(report.rows[1].kernel, "spread");
}

TEST(Roofline, CounterColumnsFlowThroughToReportAndJson) {
  MachinePeaks peaks;
  peaks.gbps = 10.0;
  peaks.gflops = 100.0;
  peaks.threads = 4;

  KernelMeasurement m;
  m.name = "collide_stream";
  m.seconds = 1.0;
  m.units = 1e6;
  m.spans = 10;
  m.has_counters = true;
  m.cycles = 4e9;
  m.instructions = 8e9;  // IPC 2
  m.llc_references = 1e8;
  m.llc_misses = 5e7;  // miss rate 0.5
  m.stalled_backend = 1e9;

  const RooflineReport report = build_roofline({m}, peaks);
  ASSERT_EQ(report.rows.size(), 1u);
  const RooflineRow& r = report.rows[0];
  EXPECT_TRUE(r.has_counters);
  EXPECT_NEAR(r.ipc, 2.0, 1e-12);
  EXPECT_NEAR(r.llc_miss_rate, 0.5, 1e-12);
  EXPECT_NEAR(r.llc_miss_per_unit, 5e7 / 1e6, 1e-9);
  // 5e7 line fills x 64 B in 1 s = 3.2 GB/s.
  EXPECT_NEAR(r.measured_gbps, 3.2, 1e-9);
  EXPECT_NEAR(r.stalled_frac, 0.25, 1e-12);

  const std::string text = report.to_string();
  EXPECT_NE(text.find("collide_stream"), std::string::npos);
  EXPECT_NE(text.find("bandwidth"), std::string::npos);

  const std::string json = report.json();
  EXPECT_NE(json.find("\"peaks\""), std::string::npos);
  EXPECT_NE(json.find("\"ipc\""), std::string::npos);
  EXPECT_NE(json.find("\"bound\": \"bandwidth\""), std::string::npos);
}

}  // namespace
}  // namespace lbmib::perfmodel
