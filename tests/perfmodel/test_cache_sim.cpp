#include <gtest/gtest.h>

#include "common/error.hpp"
#include "perfmodel/cache_sim.hpp"

namespace lbmib {
namespace {

TEST(CacheLevel, GeometryDerived) {
  CacheLevel cache(16 << 10, 64, 4);  // Opteron L1
  EXPECT_EQ(cache.num_sets(), 64u);
  EXPECT_EQ(cache.line_bytes(), 64u);
  EXPECT_EQ(cache.associativity(), 4);
}

TEST(CacheLevel, RejectsBadGeometry) {
  EXPECT_THROW(CacheLevel(1000, 64, 4), Error);   // size not multiple
  EXPECT_THROW(CacheLevel(1024, 48, 1), Error);   // line not power of two
  EXPECT_THROW(CacheLevel(1024, 64, 0), Error);   // zero ways
}

TEST(CacheLevel, ColdMissThenHit) {
  CacheLevel cache(1024, 64, 2);
  EXPECT_FALSE(cache.access(0));   // cold miss
  EXPECT_TRUE(cache.access(0));    // hit
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.accesses(), 4u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 0.5);
}

TEST(CacheLevel, LruEvictionOrder) {
  // Direct-mapped-like scenario in one set: 2-way cache, 8 sets of 64B
  // lines -> addresses 0, 1024, 2048 all map to set 0.
  CacheLevel cache(1024, 64, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(1024));
  EXPECT_TRUE(cache.access(0));     // refresh line 0 -> LRU is 1024
  EXPECT_FALSE(cache.access(2048)); // evicts 1024
  EXPECT_TRUE(cache.access(0));     // still resident
  EXPECT_FALSE(cache.access(1024)); // was evicted
}

TEST(CacheLevel, AssociativityPreventsConflictMisses) {
  // 4 conflicting lines fit in a 4-way set but thrash a 2-way one.
  CacheLevel two_way(1024, 64, 2);
  CacheLevel four_way(2048, 64, 4);  // same 8 sets, more ways
  const std::uint64_t conflict[4] = {0, 1024, 2048, 3072};
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t a : conflict) {
      two_way.access(a);
      four_way.access(a * 2);  // set 0 in the 4-way (16 sets * 64 = 1024... )
    }
  }
  // The 4-way cache only misses cold; the 2-way thrashes.
  EXPECT_EQ(four_way.misses(), 4u);
  EXPECT_GT(two_way.misses(), 4u);
}

TEST(CacheLevel, SequentialSweepMissRateIsInverseLineSize) {
  CacheLevel cache(16 << 10, 64, 4);
  // Touch 64 KB of doubles sequentially: one miss per 8 accesses.
  for (std::uint64_t addr = 0; addr < (64 << 10); addr += 8) {
    cache.access(addr);
  }
  EXPECT_NEAR(cache.miss_rate(), 1.0 / 8.0, 1e-6);
}

TEST(CacheLevel, WorkingSetSmallerThanCacheHasOnlyColdMisses) {
  CacheLevel cache(16 << 10, 64, 4);
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t addr = 0; addr < (8 << 10); addr += 64) {
      cache.access(addr);
    }
  }
  EXPECT_EQ(cache.misses(), (8u << 10) / 64);  // cold only
}

TEST(CacheLevel, WorkingSetLargerThanCacheThrashesLru) {
  CacheLevel cache(1024, 64, 2);
  // Cyclic sweep over 4 KB through a 1 KB cache with true LRU: every
  // access misses after warmup.
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t addr = 0; addr < 4096; addr += 64) {
      cache.access(addr);
    }
  }
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 1.0);
}

TEST(CacheLevel, FlushDropsContents) {
  CacheLevel cache(1024, 64, 2);
  cache.access(0);
  cache.flush();
  EXPECT_EQ(cache.accesses(), 0u);
  EXPECT_FALSE(cache.access(0));  // cold again
}

TEST(CacheLevel, ResetStatsKeepsContents) {
  CacheLevel cache(1024, 64, 2);
  cache.access(0);
  cache.reset_stats();
  EXPECT_EQ(cache.accesses(), 0u);
  EXPECT_TRUE(cache.access(0));  // still cached
}

TEST(CacheHierarchy, L2OnlySeesL1Misses) {
  CacheGeometry l1{1024, 64, 2, 1};
  CacheGeometry l2{8192, 64, 4, 2};
  CacheHierarchy h(l1, l2);
  h.access(0);
  h.access(0);
  h.access(64);
  EXPECT_EQ(h.l1().accesses(), 3u);
  EXPECT_EQ(h.l1().misses(), 2u);
  EXPECT_EQ(h.l2().accesses(), 2u);  // only the two L1 misses
}

TEST(CacheHierarchy, Opteron6380GeometryMatchesTableIII) {
  CacheHierarchy h = CacheHierarchy::opteron6380();
  EXPECT_EQ(h.l1().size_bytes(), Size{16} << 10);
  EXPECT_EQ(h.l2().size_bytes(), Size{2} << 20);
}

TEST(CacheHierarchy, AccessRangeTouchesEveryLine) {
  CacheGeometry l1{1024, 64, 2, 1};
  CacheGeometry l2{8192, 64, 4, 2};
  CacheHierarchy h(l1, l2);
  h.access_range(10, 200);  // spans lines 0..3 (bytes 10..209)
  EXPECT_EQ(h.l1().accesses(), 4u);
}

TEST(CacheHierarchy, SummaryMentionsBothLevels) {
  CacheHierarchy h = CacheHierarchy::opteron6380();
  h.access(0);
  const std::string s = h.summary();
  EXPECT_NE(s.find("L1"), std::string::npos);
  EXPECT_NE(s.find("L2"), std::string::npos);
}

}  // namespace
}  // namespace lbmib
