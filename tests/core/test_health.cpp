#include "core/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/fault_injection.hpp"
#include "core/simulation.hpp"
#include "core/solver.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

SimulationParams tiny_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

TEST(HealthMonitorTest, FreshStateIsHealthy) {
  const SimulationParams p = tiny_params();
  FluidGrid grid(p);
  Structure structure = make_structure(p);
  HealthMonitor monitor;
  const HealthReport r = monitor.scan(grid, structure, 0);
  EXPECT_EQ(r.status, HealthStatus::kHealthy);
  EXPECT_EQ(r.non_finite_nodes, 0u);
  EXPECT_NEAR(r.min_rho, 1.0, 1e-12);
  EXPECT_NEAR(r.max_rho, 1.0, 1e-12);
}

TEST(HealthMonitorTest, FlagsInjectedNan) {
  const SimulationParams p = tiny_params();
  FluidGrid grid(p);
  Structure structure = make_structure(p);
  fault::inject_nan(grid, grid.index(3, 3, 3));
  HealthMonitor monitor;
  const HealthReport r = monitor.scan(grid, structure, 7);
  EXPECT_EQ(r.status, HealthStatus::kDiverged);
  EXPECT_EQ(r.non_finite_nodes, 1u);
  EXPECT_EQ(r.step, 7);
}

TEST(HealthMonitorTest, FlagsDensityOutOfBounds) {
  const SimulationParams p = tiny_params();
  FluidGrid grid(p);
  Structure structure = make_structure(p);
  grid.rho(grid.index(1, 1, 1)) = 100.0;
  HealthMonitor monitor;
  EXPECT_EQ(monitor.scan(grid, structure).status, HealthStatus::kDiverged);
  EXPECT_EQ(monitor.scan(grid, structure).bad_density_nodes, 1u);
}

TEST(HealthMonitorTest, FlagsMachBlowupAndWarning) {
  const SimulationParams p = tiny_params();
  FluidGrid grid(p);
  Structure structure = make_structure(p);
  HealthMonitor monitor;

  // |u| = 0.25 -> Mach ~ 0.43: above warn (0.3), below blow-up (0.9).
  grid.set_velocity(grid.index(2, 2, 2), {0.25, 0.0, 0.0});
  EXPECT_EQ(monitor.scan(grid, structure).status, HealthStatus::kWarning);

  // |u| = 0.8 -> Mach ~ 1.4: beyond the lattice sound speed.
  grid.set_velocity(grid.index(2, 2, 2), {0.8, 0.0, 0.0});
  const HealthReport r = monitor.scan(grid, structure);
  EXPECT_EQ(r.status, HealthStatus::kDiverged);
  EXPECT_EQ(r.mach_exceeded_nodes, 1u);
}

TEST(HealthMonitorTest, FlagsEscapedFiberNode) {
  const SimulationParams p = tiny_params();
  FluidGrid grid(p);
  Structure structure = make_structure(p);
  structure[0].position(Size{0}) = {1e6, 0.0, 0.0};
  HealthMonitor monitor;
  const HealthReport r = monitor.scan(grid, structure);
  EXPECT_EQ(r.status, HealthStatus::kDiverged);
  EXPECT_EQ(r.bad_fiber_nodes, 1u);
}

TEST(HealthMonitorTest, IgnoresSolidNodes) {
  const SimulationParams p = tiny_params();
  FluidGrid grid(p);
  Structure structure = make_structure(p);
  const Size node = grid.index(0, 0, 0);
  grid.set_solid(node, true);
  grid.rho(node) = std::numeric_limits<Real>::quiet_NaN();
  HealthMonitor monitor;
  EXPECT_EQ(monitor.scan(grid, structure).status, HealthStatus::kHealthy);
}

// Every solver kind must be scannable, and a NaN poked into its state via
// the generic snapshot/restore path must be flagged within one scan.
class HealthAllSolversTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(HealthAllSolversTest, ScanAndInjectionWork) {
  SimulationParams p = tiny_params();
  p.num_threads = 2;
  auto solver = make_solver(GetParam(), p);
  solver->run(2);

  HealthMonitor monitor;
  EXPECT_EQ(monitor.scan(*solver).status, HealthStatus::kHealthy);

  fault::inject_nan(*solver, 100);
  EXPECT_EQ(monitor.scan(*solver).status, HealthStatus::kDiverged);
  EXPECT_GE(monitor.last_report().non_finite_nodes, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, HealthAllSolversTest,
    ::testing::Values(SolverKind::kSequential, SolverKind::kOpenMP,
                      SolverKind::kCube, SolverKind::kDataflow,
                      SolverKind::kDistributed, SolverKind::kDistributed2D),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(solver_kind_name(info.param));
    });

TEST(SimulationHealthTest, PeriodicScanRecordsDivergence) {
  SimulationParams p = tiny_params();
  Simulation sim(SolverKind::kSequential, p);
  sim.enable_health_checks(5);
  sim.on_step(1, fault::nan_at_step(7, 64));
  sim.run(20);
  // The scan at step 10 (first multiple of 5 after the step-7 injection)
  // must have caught the NaN.
  EXPECT_EQ(sim.last_health().status, HealthStatus::kDiverged);
  EXPECT_GE(sim.last_health().non_finite_nodes, 1u);
  EXPECT_EQ(sim.check_health().status, HealthStatus::kDiverged);
}

}  // namespace
}  // namespace lbmib
