// API-surface and cross-cutting regression tests: behaviours a
// downstream user relies on that no single-subsystem test pins down.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "lbmib.hpp"

namespace lbmib {
namespace {

TEST(ApiSurface, UmbrellaHeaderExposesTheCoreTypes) {
  // Everything a typical application touches must be reachable through
  // lbmib.hpp alone (this file includes nothing else from the library).
  SimulationParams params = presets::tiny();
  params.collision = CollisionModel::kMRT;
  params.num_threads = 2;
  Simulation sim(SolverKind::kCube, params);
  sim.run(3);
  EXPECT_EQ(sim.steps_completed(), 3);

  FluidGrid snapshot(params.nx, params.ny, params.nz);
  sim.solver().snapshot_fluid(snapshot);
  EXPECT_GT(kinetic_energy(snapshot), -1.0);  // observables reachable
  EXPECT_GT(pressure(snapshot, 0), 0.0);

  const TuneResult tuned = tune_cube_size(params, {4, 8}, 1);
  EXPECT_GT(tuned.best_cube_size, 0);

  const MachineTopology thog = thog_topology();  // numa model reachable
  EXPECT_EQ(thog.total_cores(), 64);
}

TEST(ApiSurface, ProfilerReportAvailableFromEverySolver) {
  SimulationParams p = presets::tiny();
  p.num_threads = 2;
  for (SolverKind kind :
       {SolverKind::kSequential, SolverKind::kOpenMP, SolverKind::kCube,
        SolverKind::kDataflow, SolverKind::kDistributed,
        SolverKind::kDistributed2D}) {
    auto solver = make_solver(kind, p);
    solver->run(2);
    EXPECT_GT(solver->profiler().total_seconds(), 0.0)
        << solver_kind_name(kind);
    EXPECT_FALSE(solver->per_thread_profiles().empty())
        << solver_kind_name(kind);
    const std::string report = solver->profiler().report();
    EXPECT_NE(report.find("compute_fluid_collision"), std::string::npos);
  }
}

TEST(ApiSurface, SolversRejectInvalidParamsAtConstruction) {
  SimulationParams bad = presets::tiny();
  bad.tau = 0.5;
  for (SolverKind kind :
       {SolverKind::kSequential, SolverKind::kOpenMP, SolverKind::kCube,
        SolverKind::kDataflow, SolverKind::kDistributed,
        SolverKind::kDistributed2D}) {
    EXPECT_THROW(make_solver(kind, bad), Error) << solver_kind_name(kind);
  }
}

TEST(ApiSurface, RunWithZeroOrNegativeStepsIsSafe) {
  SimulationParams p = presets::tiny();
  p.num_threads = 2;
  for (SolverKind kind :
       {SolverKind::kSequential, SolverKind::kCube, SolverKind::kDataflow,
        SolverKind::kDistributed, SolverKind::kDistributed2D}) {
    auto solver = make_solver(kind, p);
    solver->run(0);
    EXPECT_EQ(solver->steps_completed(), 0) << solver_kind_name(kind);
  }
}

TEST(ApiSurface, InterleavedRunsAccumulateSteps) {
  SimulationParams p = presets::tiny();
  p.num_threads = 3;
  for (SolverKind kind : {SolverKind::kCube, SolverKind::kDistributed}) {
    auto solver = make_solver(kind, p);
    solver->run(2);
    solver->step();
    solver->run(3);
    EXPECT_EQ(solver->steps_completed(), 6) << solver_kind_name(kind);
  }
}

TEST(ApiSurface, SnapshotRejectsWrongDimensions) {
  SimulationParams p = presets::tiny();
  auto solver = make_solver(SolverKind::kDistributed, p);
  FluidGrid wrong(p.nx, p.ny, p.nz + 4);
  EXPECT_THROW(solver->snapshot_fluid(wrong), Error);
}

TEST(ApiSurface, ViscosityAndSummaryHelpers) {
  SimulationParams p = presets::tiny();
  p.tau = 1.1;
  EXPECT_NEAR(p.viscosity(), 0.2, 1e-12);
  EXPECT_NE(p.summary().find("tau=1.1"), std::string::npos);
}

TEST(ApiSurface, DeepRunDoesNotDriftMass) {
  // A longer cross-solver integration: 60 steps on the cube solver must
  // conserve mass in a periodic box just like the sequential reference.
  SimulationParams p = presets::tiny();
  p.num_threads = 4;
  auto solver = make_solver(SolverKind::kCube, p);
  FluidGrid before(p.nx, p.ny, p.nz);
  solver->snapshot_fluid(before);
  const Real mass0 = before.total_mass();
  solver->run(60);
  FluidGrid after(p.nx, p.ny, p.nz);
  solver->snapshot_fluid(after);
  EXPECT_NEAR(after.total_mass(), mass0, 1e-9 * mass0);
}

TEST(ApiSurface, ObserverReceivesTheRunningSolver) {
  SimulationParams p = presets::tiny();
  p.num_threads = 2;
  auto solver = make_solver(SolverKind::kDataflow, p);
  bool saw_self = false;
  solver->run(
      2,
      [&](Solver& s, Index) { saw_self = (&s == solver.get()); },
      2);
  EXPECT_TRUE(saw_self);
}

TEST(ApiSurface, StructureAccessorsAreConsistent) {
  SimulationParams p = presets::tiny();
  SheetSpec extra;
  extra.num_fibers = 3;
  extra.nodes_per_fiber = 3;
  extra.width = 2.0;
  extra.height = 2.0;
  extra.origin = {10.0, 10.0, 10.0};
  p.extra_sheets.push_back(extra);
  auto solver = make_solver(SolverKind::kSequential, p);
  EXPECT_EQ(solver->structure().size(), 2u);
  EXPECT_EQ(&solver->sheet(), &solver->structure().front());
  EXPECT_EQ(structure_num_nodes(solver->structure()),
            p.fiber_nodes());
}

}  // namespace
}  // namespace lbmib
