#include <gtest/gtest.h>

#include "core/openmp_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams small_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

/// The paper's correctness criterion: parallel results must match the
/// sequential implementation. Sweep thread counts.
class OpenMPEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OpenMPEquivalence, MatchesSequentialAfterManySteps) {
  SimulationParams p = small_params();
  SequentialSolver seq(p);
  p.num_threads = GetParam();
  OpenMPSolver omp(p);
  seq.run(10);
  omp.run(10);
  const StateDiff diff = compare_solvers(seq, omp);
  // Atomic force accumulation reorders additions, so allow rounding noise.
  EXPECT_LT(diff.max_any(), 1e-11) << diff.to_string();
}

TEST_P(OpenMPEquivalence, ChannelFlowMatchesSequential) {
  SimulationParams p = small_params();
  p.boundary = BoundaryType::kChannel;
  p.sheet_origin = {6.0, 6.0, 6.0};
  SequentialSolver seq(p);
  p.num_threads = GetParam();
  OpenMPSolver omp(p);
  seq.run(8);
  omp.run(8);
  const StateDiff diff = compare_solvers(seq, omp);
  EXPECT_LT(diff.max_any(), 1e-11) << diff.to_string();
}

INSTANTIATE_TEST_SUITE_P(Threads, OpenMPEquivalence,
                         ::testing::Values(1, 2, 3, 4, 7, 8),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(OpenMPSolver, PerThreadProfilesHaveOneEntryPerThread) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  OpenMPSolver solver(p);
  solver.run(2);
  const auto profiles = solver.per_thread_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  for (const KernelProfiler& prof : profiles) {
    EXPECT_GT(prof.total_seconds(), 0.0);
  }
}

TEST(OpenMPSolver, AggregateProfilerAdvancesPerStep) {
  SimulationParams p = small_params();
  p.num_threads = 2;
  OpenMPSolver solver(p);
  solver.run(1);
  const double after_one = solver.profiler().total_seconds();
  solver.run(1);
  EXPECT_GT(solver.profiler().total_seconds(), after_one);
}

TEST(OpenMPSolver, MoreThreadsThanXSlabsStillCorrect) {
  SimulationParams p = small_params();  // nx = 16
  SequentialSolver seq(p);
  p.num_threads = 16;
  OpenMPSolver omp(p);
  seq.run(4);
  omp.run(4);
  EXPECT_LT(compare_solvers(seq, omp).max_any(), 1e-11);
}

TEST(OpenMPSolver, Name) {
  OpenMPSolver solver(small_params());
  EXPECT_EQ(solver.name(), "openmp");
}

}  // namespace
}  // namespace lbmib
