#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/distributed_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams small_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

/// Equivalence against the sequential solver across rank counts — the
/// halo-exchange protocol must reproduce shared-memory streaming exactly
/// (only fiber interpolation reassociates floating point sums).
class DistributedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DistributedEquivalence, MatchesSequential) {
  SimulationParams p = small_params();
  SequentialSolver seq(p);
  p.num_threads = GetParam();
  DistributedSolver dist(p);
  seq.run(8);
  dist.run(8);
  const StateDiff diff = compare_solvers(seq, dist);
  EXPECT_LT(diff.max_any(), 1e-11) << diff.to_string();
}

TEST_P(DistributedEquivalence, ChannelFlowMatchesSequential) {
  SimulationParams p = small_params();
  p.boundary = BoundaryType::kChannel;
  p.sheet_origin = {6.0, 6.0, 6.0};
  SequentialSolver seq(p);
  p.num_threads = GetParam();
  DistributedSolver dist(p);
  seq.run(8);
  dist.run(8);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedEquivalence,
                         ::testing::Values(1, 2, 3, 4, 7, 8),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param);
                         });

TEST(DistributedSolver, InletOutletMatchesSequential) {
  SimulationParams p;
  p.nx = 24;
  p.ny = 12;
  p.nz = 12;
  p.boundary = BoundaryType::kInletOutlet;
  p.inlet_velocity = {0.03, 0.0, 0.0};
  p.num_fibers = 5;
  p.nodes_per_fiber = 5;
  p.sheet_width = 4.0;
  p.sheet_height = 4.0;
  p.sheet_origin = {10.0, 4.0, 4.0};
  SequentialSolver seq(p);
  seq.run(10);
  p.num_threads = 4;
  DistributedSolver dist(p);
  dist.run(10);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-11);
}

TEST(DistributedSolver, MultiSheetMatchesSequential) {
  SimulationParams p = small_params();
  SheetSpec second;
  second.num_fibers = 4;
  second.nodes_per_fiber = 5;
  second.width = 2.0;
  second.height = 3.0;
  second.origin = {10.0, 5.0, 5.0};
  second.stretching_coeff = 0.02;
  second.bending_coeff = 0.002;
  p.extra_sheets.push_back(second);
  SequentialSolver seq(p);
  seq.run(6);
  p.num_threads = 3;
  DistributedSolver dist(p);
  dist.run(6);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-11);
}

TEST(DistributedSolver, SlabsPartitionTheDomain) {
  SimulationParams p = small_params();
  p.num_threads = 5;
  DistributedSolver dist(p);
  Index covered = 0;
  for (int r = 0; r < 5; ++r) {
    const auto [lo, hi] = dist.slab_of(r);
    EXPECT_LE(lo, hi);
    if (r > 0) EXPECT_EQ(lo, dist.slab_of(r - 1).second);
    covered += hi - lo;
  }
  EXPECT_EQ(dist.slab_of(0).first, 0);
  EXPECT_EQ(dist.slab_of(4).second, p.nx);
  EXPECT_EQ(covered, p.nx);
}

TEST(DistributedSolver, HaloTrafficIsTwoMessagesPerStep) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  DistributedSolver dist(p);
  dist.run(6);
  EXPECT_EQ(dist.halo_exchanges(), 12u);  // 2 per step, counted at rank 0
}

TEST(DistributedSolver, RejectsMoreRanksThanColumns) {
  SimulationParams p = small_params();  // nx = 16
  p.num_threads = 17;
  EXPECT_THROW(DistributedSolver{p}, Error);
}

TEST(DistributedSolver, InletOutletNeedsTwoColumnsPerBoundaryRank) {
  SimulationParams p = small_params();
  p.boundary = BoundaryType::kInletOutlet;
  p.inlet_velocity = {0.02, 0.0, 0.0};
  p.num_threads = 16;  // one column per rank
  EXPECT_THROW(DistributedSolver{p}, Error);
}

TEST(DistributedSolver, ObserverSeesConsistentState) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  DistributedSolver dist(p);
  SequentialSolver reference(small_params());
  Real max_diff = 0.0;
  dist.run(
      6,
      [&](Solver& s, Index) {
        reference.run(3);
        max_diff =
            std::max(max_diff, compare_solvers(reference, s).max_any());
      },
      3);
  EXPECT_LT(max_diff, 1e-11);
}

TEST(DistributedSolver, StructureReplicasStayInSync) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  p.initial_velocity = {0.02, 0.0, 0.0};
  DistributedSolver dist(p);
  dist.run(10);
  // The base structure (rank 0's replica) moved with the flow.
  EXPECT_GT(dist.sheet().centroid().x, p.sheet_origin.x + 0.1);
}

TEST(DistributedSolver, AvailableThroughFactory) {
  auto solver = make_solver(SolverKind::kDistributed, small_params());
  EXPECT_EQ(solver->name(), "distributed");
  solver->run(2);
  EXPECT_EQ(solver->steps_completed(), 2);
}

TEST(DistributedSolver, ZeroFiberSimulation) {
  SimulationParams p = small_params();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  p.num_threads = 4;
  DistributedSolver dist(p);
  SequentialSolver seq(p);
  dist.run(5);
  seq.run(5);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-12);
}

}  // namespace
}  // namespace lbmib
