#include <gtest/gtest.h>

#include <cmath>

#include "core/sequential_solver.hpp"

namespace lbmib {
namespace {

SimulationParams small_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  p.boundary = BoundaryType::kPeriodic;
  return p;
}

TEST(SequentialSolver, RunsRequestedSteps) {
  SequentialSolver solver(small_params());
  solver.run(5);
  EXPECT_EQ(solver.steps_completed(), 5);
  solver.run(3);
  EXPECT_EQ(solver.steps_completed(), 8);
}

TEST(SequentialSolver, MassConservedOverManySteps) {
  SequentialSolver solver(small_params());
  const Real mass0 = solver.fluid().total_mass();
  solver.run(20);
  EXPECT_NEAR(solver.fluid().total_mass(), mass0, mass0 * 1e-10);
}

TEST(SequentialSolver, BodyForceAcceleratesFlow) {
  SimulationParams p = small_params();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  SequentialSolver solver(p);
  solver.run(10);
  const Vec3 momentum = solver.fluid().total_momentum();
  EXPECT_GT(momentum.x, 0.0);
  EXPECT_NEAR(momentum.y, 0.0, 1e-12);
  // Each step adds F per node (Guo forcing): after 10 steps p_x ~
  // 10 * n * 1e-5 up to the half-step bookkeeping of the final step.
  const Real expected = 10.0 * static_cast<Real>(p.fluid_nodes()) * 1e-5;
  EXPECT_NEAR(momentum.x, expected, 0.1 * expected);
}

TEST(SequentialSolver, FibersMoveWithTheFlow) {
  SimulationParams p = small_params();
  p.initial_velocity = {0.02, 0.0, 0.0};
  p.body_force = {};
  SequentialSolver solver(p);
  const Vec3 centroid0 = solver.sheet().centroid();
  solver.run(10);
  const Vec3 centroid1 = solver.sheet().centroid();
  EXPECT_GT(centroid1.x - centroid0.x, 0.1);  // ~ 10 * 0.02
  EXPECT_NEAR(centroid1.y, centroid0.y, 0.05);
}

TEST(SequentialSolver, ProfilerChargesAllKernels) {
  // Reference pipeline: every one of the paper's nine kernels runs as a
  // distinct pass, so each fluid kernel must accumulate non-zero time.
  SimulationParams p = small_params();
  p.fused_step = false;
  SequentialSolver solver(p);
  solver.run(3);
  const KernelProfiler& prof = solver.profiler();
  EXPECT_GT(prof.total_seconds(), 0.0);
  EXPECT_GT(prof.seconds(Kernel::kCollision), 0.0);
  EXPECT_GT(prof.seconds(Kernel::kStreaming), 0.0);
  EXPECT_GT(prof.seconds(Kernel::kUpdateVelocity), 0.0);
  EXPECT_GT(prof.seconds(Kernel::kCopyDistribution), 0.0);
}

TEST(SequentialSolver, FusedProfilerFoldsStreamingIntoCollision) {
  // Fused pipeline: the combined collide+stream sweep is charged to
  // kCollision, the standalone streaming pass disappears, and kernel 9
  // shrinks to the O(1) buffer swap (still timed, but tiny).
  SimulationParams p = small_params();
  p.fused_step = true;
  SequentialSolver solver(p);
  solver.run(3);
  const KernelProfiler& prof = solver.profiler();
  EXPECT_GT(prof.seconds(Kernel::kCollision), 0.0);
  EXPECT_EQ(prof.seconds(Kernel::kStreaming), 0.0);
  EXPECT_GT(prof.seconds(Kernel::kUpdateVelocity), 0.0);
  EXPECT_LT(prof.seconds(Kernel::kCopyDistribution),
            prof.seconds(Kernel::kCollision));
}

TEST(SequentialSolver, FluidKernelsDominateLikeTableI) {
  // Table I's load-bearing observation: the four kernels that visit every
  // fluid node (5 collision, 6 streaming, 7 update, 9 copy) take ~97% of
  // sequential time, with collision at the top. The exact split is
  // machine-dependent (the paper's 73% collision share reflects
  // unvectorized 2011-era compute); assert the structural claims:
  // collision is among the top two kernels and the four fluid-sweeping
  // kernels together dominate.
  SimulationParams p = small_params();
  p.nx = 32;
  p.ny = 16;
  p.nz = 16;
  p.sheet_origin = {10.0, 5.0, 5.0};
  SequentialSolver solver(p);
  solver.run(5);
  const auto rows = solver.profiler().ranked_rows();
  EXPECT_TRUE(rows[0].kernel == Kernel::kCollision ||
              rows[1].kernel == Kernel::kCollision);
  const double fluid_share =
      solver.profiler().seconds(Kernel::kCollision) +
      solver.profiler().seconds(Kernel::kStreaming) +
      solver.profiler().seconds(Kernel::kUpdateVelocity) +
      solver.profiler().seconds(Kernel::kCopyDistribution);
  EXPECT_GT(fluid_share / solver.profiler().total_seconds(), 0.75);
}

TEST(SequentialSolver, ObserverCalledAtInterval) {
  SequentialSolver solver(small_params());
  std::vector<Index> seen;
  solver.run(
      10,
      [&](Solver&, Index step) { seen.push_back(step); },
      3);
  // After steps 3, 6, 9 (0-based steps 2, 5, 8).
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 2);
  EXPECT_EQ(seen[1], 5);
  EXPECT_EQ(seen[2], 8);
}

TEST(SequentialSolver, SnapshotMatchesInternalGrid) {
  SequentialSolver solver(small_params());
  solver.run(4);
  FluidGrid snap(solver.params().nx, solver.params().ny,
                 solver.params().nz);
  solver.snapshot_fluid(snap);
  for (Size n = 0; n < snap.num_nodes(); ++n) {
    EXPECT_EQ(snap.df(0, n), solver.fluid().df(0, n));
    EXPECT_EQ(snap.velocity(n), solver.fluid().velocity(n));
  }
}

TEST(SequentialSolver, StateStaysFinite) {
  SequentialSolver solver(small_params());
  solver.run(25);
  for (Size n = 0; n < solver.fluid().num_nodes(); ++n) {
    EXPECT_TRUE(std::isfinite(solver.fluid().rho(n)));
    EXPECT_TRUE(std::isfinite(solver.fluid().ux(n)));
  }
  for (Size i = 0; i < solver.sheet().num_nodes(); ++i) {
    EXPECT_TRUE(std::isfinite(solver.sheet().position(i).x));
  }
}

TEST(SequentialSolver, ZeroFiberSimulationIsPureLBM) {
  SimulationParams p = small_params();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  SequentialSolver solver(p);
  solver.run(5);
  EXPECT_EQ(solver.sheet().num_nodes(), 0u);
  EXPECT_EQ(solver.steps_completed(), 5);
}

TEST(SequentialSolver, NameAndParamsExposed) {
  SequentialSolver solver(small_params());
  EXPECT_EQ(solver.name(), "sequential");
  EXPECT_EQ(solver.params().nx, small_params().nx);
}

}  // namespace
}  // namespace lbmib
