// Clean-run leg of the race-detection suite: every solver's real
// synchronization (barriers, per-owner locks, dataflow task edges,
// halo-exchange channels, fork/join) must establish enough
// happens-before edges that a fresh detector stays silent over full
// FSI steps. Each test installs a ScopedRaceDetector so the verdict
// does not depend on what the process-wide default has already seen.
//
// In builds without -DLBMIB_RACE_DETECT=ON the hooks compile out and
// these degrade to cheap smoke runs of the six solvers.
#include <gtest/gtest.h>

#include "core/cube_solver.hpp"
#include "core/dataflow_solver.hpp"
#include "core/distributed2d_solver.hpp"
#include "core/distributed_solver.hpp"
#include "core/openmp_solver.hpp"
#include "core/sequential_solver.hpp"
#include "parallel/race_detector.hpp"

namespace lbmib {
namespace {

SimulationParams fsi_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  p.num_threads = 4;
  return p;
}

TEST(RaceClean, SequentialSolver) {
  ScopedRaceDetector sd;
  SequentialSolver solver(fsi_params());
  EXPECT_NO_THROW(solver.run(4));
}

TEST(RaceClean, OpenMPSolverFused) {
  ScopedRaceDetector sd;
  OpenMPSolver solver(fsi_params());
  EXPECT_NO_THROW(solver.run(4));
}

TEST(RaceClean, OpenMPSolverUnfused) {
  ScopedRaceDetector sd;
  SimulationParams p = fsi_params();
  p.fused_step = false;
  OpenMPSolver solver(p);
  EXPECT_NO_THROW(solver.run(4));
}

TEST(RaceClean, CubeSolver) {
  ScopedRaceDetector sd;
  CubeSolver solver(fsi_params());
  EXPECT_NO_THROW(solver.run(4));
}

TEST(RaceClean, CubeSolverUnfused) {
  ScopedRaceDetector sd;
  SimulationParams p = fsi_params();
  p.fused_step = false;
  CubeSolver solver(p);
  EXPECT_NO_THROW(solver.run(4));
}

TEST(RaceClean, DataflowSolver) {
  ScopedRaceDetector sd;
  DataflowCubeSolver solver(fsi_params());
  EXPECT_NO_THROW(solver.run(4));
}

TEST(RaceClean, DataflowSolverOverlapped) {
  // Fiber-free runs take the cross-step overlapped task graph; its
  // pending-counter and queue-slot edges must be sufficient on their own
  // (no phase barriers exist on this path).
  ScopedRaceDetector sd;
  SimulationParams p = fsi_params();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  DataflowCubeSolver solver(p);
  EXPECT_NO_THROW(solver.run(6));
  EXPECT_EQ(solver.steps_completed(), 6);
}

TEST(RaceClean, DistributedSolver) {
  ScopedRaceDetector sd;
  DistributedSolver solver(fsi_params());
  EXPECT_NO_THROW(solver.run(4));
}

TEST(RaceClean, Distributed2DSolver) {
  ScopedRaceDetector sd;
  Distributed2DSolver solver(fsi_params());
  EXPECT_NO_THROW(solver.run(4));
}

TEST(RaceClean, ChannelBoundaryAcrossSolvers) {
  // Inlet/outlet adds the cross-cube boundary reads and the planar
  // boundary kernel's edge-plane writes; keep those silent too.
  SimulationParams p = fsi_params();
  p.boundary = BoundaryType::kChannel;
  {
    ScopedRaceDetector sd;
    OpenMPSolver solver(p);
    EXPECT_NO_THROW(solver.run(3));
  }
  {
    ScopedRaceDetector sd;
    CubeSolver solver(p);
    EXPECT_NO_THROW(solver.run(3));
  }
  {
    ScopedRaceDetector sd;
    DataflowCubeSolver solver(p);
    EXPECT_NO_THROW(solver.run(3));
  }
  {
    ScopedRaceDetector sd;
    DistributedSolver solver(p);
    EXPECT_NO_THROW(solver.run(3));
  }
}

}  // namespace
}  // namespace lbmib
