#include "core/resilient_runner.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/error.hpp"
#include "core/fault_injection.hpp"
#include "core/verification.hpp"
#include "io/checkpoint.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

SimulationParams tiny_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

ResilienceConfig test_config(const std::string& name) {
  ResilienceConfig cfg;
  cfg.checkpoint_interval = 5;
  cfg.health_interval = 5;
  cfg.max_retries = 2;
  cfg.checkpoint_base = ::testing::TempDir() + name;
  return cfg;
}

// The tentpole round-trip: a NaN injected at step 12 is caught by the
// next scan, the run rolls back to the step-10 checkpoint, retries with
// degraded parameters, and completes all 30 steps.
TEST(ResilientRunnerTest, RecoversFromInjectedNan) {
  const SimulationParams p = tiny_params();
  ResilientRunner runner(SolverKind::kSequential, p,
                         test_config("resilient_nan.ckpt"));
  runner.on_step(1, fault::nan_at_step(12, 200));

  const ResilienceReport report = runner.run(30);

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.steps_completed, 30);
  EXPECT_EQ(report.retries_used, 1);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].detected_step, 15);
  EXPECT_EQ(report.events[0].resumed_step, 10);
  EXPECT_NEAR(report.events[0].new_tau, p.tau + 0.05, 1e-12);
  EXPECT_NEAR(runner.current_params().stretching_coeff,
              p.stretching_coeff * 0.5, 1e-12);

  // The final state must be clean.
  HealthMonitor monitor;
  EXPECT_EQ(monitor.scan(runner.solver()).status, HealthStatus::kHealthy);

  // Checkpoints are cleaned up after a successful run by default.
  EXPECT_FALSE(runner.rotation().has_checkpoint());
}

TEST(ResilientRunnerTest, FaultFreeRunMatchesPlainRun) {
  const SimulationParams p = tiny_params();
  ResilientRunner runner(SolverKind::kSequential, p,
                         test_config("resilient_clean.ckpt"));
  const ResilienceReport report = runner.run(20);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.retries_used, 0);

  auto plain = make_solver(SolverKind::kSequential, p);
  plain->run(20);
  EXPECT_EQ(compare_solvers(*plain, runner.solver()).max_any(), 0.0);
}

TEST(ResilientRunnerTest, PersistentFaultExhaustsRetriesAndThrows) {
  const SimulationParams p = tiny_params();
  ResilienceConfig cfg = test_config("resilient_persistent.ckpt");
  ResilientRunner runner(SolverKind::kSequential, p, cfg);
  // A fault that re-fires after every rollback: poison some node on every
  // observed step. No retry budget can outrun this.
  runner.on_step(1, [](Solver& solver, Index) {
    fault::inject_nan(solver, 50);
  });
  EXPECT_THROW(runner.run(30), Error);
  CheckpointRotation(cfg.checkpoint_base).remove_files();
}

TEST(ResilientRunnerTest, RecoversOnParallelSolver) {
  SimulationParams p = tiny_params();
  p.num_threads = 2;
  ResilientRunner runner(SolverKind::kCube, p,
                         test_config("resilient_cube.ckpt"));
  runner.on_step(1, fault::nan_at_step(8, 321));
  const ResilienceReport report = runner.run(20);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.retries_used, 1);
  HealthMonitor monitor;
  EXPECT_EQ(monitor.scan(runner.solver()).status, HealthStatus::kHealthy);
}

// restore_state must round-trip through every solver kind: running 5
// steps, snapshotting, restoring into a FRESH solver, and running 5 more
// must match a straight 10-step run of the same kind.
class RestoreStateTest : public ::testing::TestWithParam<SolverKind> {};

TEST_P(RestoreStateTest, SnapshotRestoreResumesEquivalently) {
  SimulationParams p = tiny_params();
  p.num_threads = 2;

  auto straight = make_solver(GetParam(), p);
  straight->run(10);

  auto first = make_solver(GetParam(), p);
  first->run(5);
  FluidGrid snapshot(p.nx, p.ny, p.nz);
  first->snapshot_fluid(snapshot);

  auto resumed = make_solver(GetParam(), p);
  resumed->restore_state(snapshot, first->structure(),
                         first->steps_completed());
  EXPECT_EQ(resumed->steps_completed(), 5);
  resumed->run(5);

  // Solvers whose cross-thread force adds have scheduling-dependent
  // order (openmp atomics, cube owner locks, dataflow tasks) are only
  // reproducible run-to-run up to reduction round-off; the single-order
  // solvers (sequential, distributed's deterministic reduce) replay
  // bit-exactly.
  const bool nondeterministic_order = GetParam() == SolverKind::kOpenMP ||
                                      GetParam() == SolverKind::kCube ||
                                      GetParam() == SolverKind::kDataflow;
  const Real tol = nondeterministic_order ? 1e-9 : 0.0;
  EXPECT_LE(compare_solvers(*straight, *resumed).max_any(), tol);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, RestoreStateTest,
    ::testing::Values(SolverKind::kSequential, SolverKind::kOpenMP,
                      SolverKind::kCube, SolverKind::kDataflow,
                      SolverKind::kDistributed, SolverKind::kDistributed2D),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(solver_kind_name(info.param));
    });

}  // namespace
}  // namespace lbmib
