#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/verification.hpp"
#include "ib/fiber_sheet.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

TEST(StateDiff, MaxAnyPicksLargest) {
  StateDiff d;
  d.max_df = 0.1;
  d.max_velocity = 0.5;
  d.max_position = 0.3;
  EXPECT_DOUBLE_EQ(d.max_any(), 0.5);
  EXPECT_FALSE(d.within(0.4));
  EXPECT_TRUE(d.within(0.5));
}

TEST(StateDiff, ToStringListsComponents) {
  StateDiff d;
  const std::string s = d.to_string();
  EXPECT_NE(s.find("df="), std::string::npos);
  EXPECT_NE(s.find("rho="), std::string::npos);
}

TEST(CompareFluid, IdenticalGridsDiffZero) {
  FluidGrid a(4, 4, 4, 1.0, {0.01, 0.0, 0.0});
  FluidGrid b(4, 4, 4, 1.0, {0.01, 0.0, 0.0});
  const StateDiff d = compare_fluid(a, b);
  EXPECT_EQ(d.max_any(), 0.0);
}

TEST(CompareFluid, DetectsDfDifference) {
  FluidGrid a(4, 4, 4);
  FluidGrid b(4, 4, 4);
  b.df(3, 7) += 0.25;
  const StateDiff d = compare_fluid(a, b);
  EXPECT_DOUBLE_EQ(d.max_df, 0.25);
  EXPECT_EQ(d.max_velocity, 0.0);
}

TEST(CompareFluid, DetectsVelocityAndDensityDifference) {
  FluidGrid a(4, 4, 4);
  FluidGrid b(4, 4, 4);
  b.set_velocity(5, {0.0, -0.125, 0.0});
  b.rho(9) = 1.5;
  const StateDiff d = compare_fluid(a, b);
  EXPECT_DOUBLE_EQ(d.max_velocity, 0.125);
  EXPECT_DOUBLE_EQ(d.max_density, 0.5);
}

TEST(CompareFluid, RejectsDimensionMismatch) {
  FluidGrid a(4, 4, 4);
  FluidGrid b(4, 4, 8);
  EXPECT_THROW(compare_fluid(a, b), Error);
}

TEST(CompareSheets, DetectsPositionAndForceDifference) {
  FiberSheet a(3, 3, 2.0, 2.0, {}, 0.0, 0.0);
  FiberSheet b(3, 3, 2.0, 2.0, {}, 0.0, 0.0);
  b.position(4) += Vec3{0.0, 0.0, 0.75};
  b.elastic_force(2) = {0.5, 0.0, 0.0};
  const StateDiff d = compare_sheets(a, b);
  EXPECT_DOUBLE_EQ(d.max_position, 0.75);
  EXPECT_DOUBLE_EQ(d.max_force, 0.5);
}

TEST(CompareSheets, RejectsDimensionMismatch) {
  FiberSheet a(3, 3, 2.0, 2.0, {}, 0.0, 0.0);
  FiberSheet b(3, 4, 2.0, 2.0, {}, 0.0, 0.0);
  EXPECT_THROW(compare_sheets(a, b), Error);
}

}  // namespace
}  // namespace lbmib
