// The MRT collision model must behave identically across all five solver
// implementations and flow through the configuration layer.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.hpp"

#include "common/config_file.hpp"
#include "core/cube_solver.hpp"
#include "core/dataflow_solver.hpp"
#include "core/distributed_solver.hpp"
#include "core/openmp_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams mrt_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  p.collision = CollisionModel::kMRT;
  return p;
}

TEST(MrtSolvers, AllParallelSolversMatchSequential) {
  SimulationParams p = mrt_params();
  SequentialSolver seq(p);
  seq.run(8);

  p.num_threads = 4;
  OpenMPSolver omp(p);
  omp.run(8);
  EXPECT_LT(compare_solvers(seq, omp).max_any(), 1e-11) << "openmp";

  CubeSolver cube(p);
  cube.run(8);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11) << "cube";

  DataflowCubeSolver flow(p);
  flow.run(8);
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-11) << "dataflow";

  DistributedSolver dist(p);
  dist.run(8);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-11) << "distributed";
}

TEST(MrtSolvers, MrtAndBgkDivergeOnTransients) {
  // Sanity check that the switch actually changes the dynamics: a
  // perturbed transient must differ between the models (they only share
  // the hydrodynamic limit).
  SimulationParams bgk = mrt_params();
  bgk.collision = CollisionModel::kBGK;
  SequentialSolver a(bgk);
  SequentialSolver b(mrt_params());
  // Perturb both identically away from equilibrium.
  a.fluid().df(5, 100) += 0.01;
  b.fluid().df(5, 100) += 0.01;
  a.run(3);
  b.run(3);
  EXPECT_GT(compare_solvers(a, b).max_df, 1e-8);
}

TEST(MrtSolvers, ConfigFileSelectsMrt) {
  std::istringstream in("collision = mrt\nboundary = channel\n");
  const SimulationParams p = parse_params(in);
  EXPECT_EQ(p.collision, CollisionModel::kMRT);
  std::istringstream in2("collision = bgk\n");
  EXPECT_EQ(parse_params(in2).collision, CollisionModel::kBGK);
  std::istringstream bad("collision = entropic\n");
  EXPECT_THROW(parse_params(bad), Error);
}

TEST(MrtSolvers, ConfigRoundTripsCollisionAndInlet) {
  const std::string path = ::testing::TempDir() + "lbmib_mrt_cfg.cfg";
  SimulationParams p = mrt_params();
  p.boundary = BoundaryType::kInletOutlet;
  p.inlet_velocity = {0.02, 0.0, 0.01};
  p.nx = 24;
  save_params_file(p, path);
  const SimulationParams q = load_params_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(q.collision, CollisionModel::kMRT);
  EXPECT_EQ(q.boundary, BoundaryType::kInletOutlet);
  EXPECT_EQ(q.inlet_velocity, p.inlet_velocity);
}

TEST(MrtSolvers, MrtWithChannelAndSheetStaysStable) {
  SimulationParams p = mrt_params();
  p.boundary = BoundaryType::kChannel;
  p.sheet_origin = {6.0, 6.0, 6.0};
  p.num_threads = 2;
  CubeSolver solver(p);
  solver.run(20);
  FluidGrid snap(p.nx, p.ny, p.nz);
  solver.snapshot_fluid(snap);
  for (Size n = 0; n < snap.num_nodes(); ++n) {
    EXPECT_TRUE(std::isfinite(snap.rho(n)));
  }
}

}  // namespace
}  // namespace lbmib
