#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/distributed2d_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams small_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

/// The 2-D tile decomposition (faces + corners) against the sequential
/// reference, across rank counts that factor into different meshes
/// (4 -> 2x2, 6 -> 3x2, 8 -> 4x2, 9 -> 3x3).
class Distributed2DEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(Distributed2DEquivalence, PeriodicMatchesSequential) {
  SimulationParams p = small_params();
  SequentialSolver seq(p);
  seq.run(8);
  p.num_threads = GetParam();
  Distributed2DSolver dist(p);
  dist.run(8);
  const StateDiff diff = compare_solvers(seq, dist);
  EXPECT_LT(diff.max_any(), 1e-11) << diff.to_string();
}

TEST_P(Distributed2DEquivalence, ChannelMatchesSequential) {
  SimulationParams p = small_params();
  p.boundary = BoundaryType::kChannel;
  p.sheet_origin = {6.0, 6.0, 6.0};
  SequentialSolver seq(p);
  seq.run(8);
  p.num_threads = GetParam();
  Distributed2DSolver dist(p);
  dist.run(8);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-11);
}

TEST_P(Distributed2DEquivalence, CavityMatchesSequential) {
  SimulationParams p;
  p.nx = 16;
  p.ny = 16;
  p.nz = 16;
  p.boundary = BoundaryType::kCavity;
  p.lid_velocity = {0.05, 0.0, 0.0};
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  SequentialSolver seq(p);
  seq.run(10);
  p.num_threads = GetParam();
  Distributed2DSolver dist(p);
  dist.run(10);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Ranks, Distributed2DEquivalence,
                         ::testing::Values(1, 2, 4, 6, 8, 9),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param);
                         });

TEST(Distributed2DSolver, MeshFactorization) {
  SimulationParams p = small_params();
  p.num_threads = 6;
  Distributed2DSolver dist(p);
  EXPECT_EQ(dist.ranks_x() * dist.ranks_y(), 6);
  EXPECT_GE(dist.ranks_x(), dist.ranks_y());
  EXPECT_EQ(dist.ranks_x(), 3);
  EXPECT_EQ(dist.ranks_y(), 2);
}

TEST(Distributed2DSolver, TilesPartitionTheDomain) {
  SimulationParams p = small_params();
  p.num_threads = 6;
  Distributed2DSolver dist(p);
  Size covered = 0;
  for (int r = 0; r < 6; ++r) {
    const auto t = dist.tile_of(r);
    EXPECT_LT(t.x_lo, t.x_hi);
    EXPECT_LT(t.y_lo, t.y_hi);
    covered += static_cast<Size>((t.x_hi - t.x_lo) * (t.y_hi - t.y_lo));
  }
  EXPECT_EQ(covered, static_cast<Size>(p.nx * p.ny));
}

TEST(Distributed2DSolver, InletOutletMatchesSequential) {
  SimulationParams p;
  p.nx = 24;
  p.ny = 12;
  p.nz = 12;
  p.boundary = BoundaryType::kInletOutlet;
  p.inlet_velocity = {0.03, 0.0, 0.0};
  p.num_fibers = 5;
  p.nodes_per_fiber = 5;
  p.sheet_width = 4.0;
  p.sheet_height = 4.0;
  p.sheet_origin = {10.0, 4.0, 4.0};
  SequentialSolver seq(p);
  seq.run(10);
  p.num_threads = 6;  // 3 x 2 mesh: the inlet spans two y-ranks
  Distributed2DSolver dist(p);
  dist.run(10);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-11);
}

TEST(Distributed2DSolver, MultiSheetMrtMatchesSequential) {
  SimulationParams p = small_params();
  p.collision = CollisionModel::kMRT;
  SheetSpec second;
  second.num_fibers = 4;
  second.nodes_per_fiber = 5;
  second.width = 2.0;
  second.height = 3.0;
  second.origin = {10.0, 5.0, 5.0};
  second.stretching_coeff = 0.02;
  second.bending_coeff = 0.002;
  p.extra_sheets.push_back(second);
  SequentialSolver seq(p);
  seq.run(6);
  p.num_threads = 4;
  Distributed2DSolver dist(p);
  dist.run(6);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-11);
}

TEST(Distributed2DSolver, RejectsTooManyRanks) {
  SimulationParams p = small_params();  // 16^3
  p.num_threads = 17;  // prime -> 17 x 1 mesh, nx = 16 < 17
  EXPECT_THROW(Distributed2DSolver{p}, Error);
}

TEST(Distributed2DSolver, AvailableThroughFactory) {
  auto solver = make_solver(SolverKind::kDistributed2D, small_params());
  EXPECT_EQ(solver->name(), "distributed2d");
  solver->run(2);
  EXPECT_EQ(solver->steps_completed(), 2);
}

TEST(Distributed2DSolver, ObserverSeesConsistentState) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  Distributed2DSolver dist(p);
  SequentialSolver reference(small_params());
  Real max_diff = 0.0;
  dist.run(
      6,
      [&](Solver& s, Index) {
        reference.run(3);
        max_diff =
            std::max(max_diff, compare_solvers(reference, s).max_any());
      },
      3);
  EXPECT_LT(max_diff, 1e-11);
}

}  // namespace
}  // namespace lbmib
