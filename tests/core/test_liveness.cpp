// Liveness-layer integration tests: injected hangs (chaos stalls, lost
// halo messages) must be detected by the watchdog, named in the hang
// report, and survived by the ResilientRunner; clean runs under an armed
// watchdog must never trip. The OpenMP variants live in
// tests/core/test_liveness_openmp.cpp (this binary is in the TSan
// `concurrency` label, which excludes libgomp).
#include <gtest/gtest.h>

#include <string>

#include "core/fault_injection.hpp"
#include "core/resilient_runner.hpp"
#include "core/simulation.hpp"
#include "core/watchdog.hpp"
#include "parallel/cancel.hpp"

namespace lbmib {
namespace {

SimulationParams liveness_params(SolverKind kind) {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  p.num_threads = kind == SolverKind::kSequential ? 1 : 2;
  return p;
}

/// A sync point each solver kind is guaranteed to pass through every
/// step (the label the chaos stall arms against and the hang report
/// must name).
const char* stall_point(SolverKind kind) {
  switch (kind) {
    case SolverKind::kSequential:
      return "sequential:step";
    case SolverKind::kOpenMP:
      return "openmp:step";
    case SolverKind::kCube:
      return "cube:barrier:collide";
    case SolverKind::kDataflow:
      return "dataflow:task-loop";
    case SolverKind::kDistributed:
      return "distributed:halo";
    case SolverKind::kDistributed2D:
      return "distributed2d:halo";
  }
  return "";
}

/// Disarms chaos and clears retired heartbeat slots even when an
/// assertion fails mid-test.
class LivenessTest : public ::testing::TestWithParam<SolverKind> {
 protected:
  void SetUp() override { chaos::reset(); }
  void TearDown() override {
    chaos::reset();
    ProgressBoard::global().clear_retired();
  }
};

// --- watchdog detection ----------------------------------------------

TEST_P(LivenessTest, WatchdogDetectsInjectedPermanentStall) {
  const SolverKind kind = GetParam();
  Simulation sim(kind, liveness_params(kind));
  sim.enable_watchdog(500);

  chaos::StallSpec stall;
  stall.point_substr = stall_point(kind);
  stall.duration_ms = -1;  // permanent stick until cancelled
  chaos::arm_stall(stall);

  try {
    sim.run(50);
    FAIL() << "expected the watchdog to cancel the stalled run";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.cause(), CancelCause::kWatchdog);
  }
  EXPECT_EQ(chaos::stalls_fired(), 1);
  ASSERT_NE(sim.watchdog(), nullptr);
  EXPECT_EQ(sim.watchdog()->trips(), 1);
  // The hang report names the stuck thread's sync point.
  const std::string report = sim.watchdog()->last_report();
  EXPECT_NE(report.find("hang report"), std::string::npos);
  EXPECT_NE(report.find(stall_point(kind)), std::string::npos);
  EXPECT_NE(report.find("STUCK"), std::string::npos);
}

// --- recovery --------------------------------------------------------

TEST_P(LivenessTest, ResilientRunnerRecoversFromStall) {
  const SolverKind kind = GetParam();
  const SimulationParams p = liveness_params(kind);
  ResilienceConfig cfg;
  cfg.checkpoint_interval = 5;
  cfg.health_interval = 5;
  cfg.max_retries = 2;
  cfg.watchdog_deadline_ms = 500;
  cfg.checkpoint_base = ::testing::TempDir() + "liveness_stall_" +
                        std::string(solver_kind_name(kind)) + ".ckpt";
  ResilientRunner runner(kind, p, cfg);

  chaos::StallSpec stall;
  stall.point_substr = stall_point(kind);
  stall.duration_ms = -1;
  chaos::arm_stall(stall);

  const ResilienceReport report = runner.run(30);

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.steps_completed, 30);
  EXPECT_EQ(report.retries_used, 1);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_TRUE(report.events[0].hang);
  // Hang recovery degrades the schedule, not the physics.
  EXPECT_EQ(runner.current_params().tau, p.tau);
  if (p.num_threads > 1) {
    EXPECT_EQ(report.events[0].new_num_threads, p.num_threads / 2);
  }
  HealthMonitor monitor;
  EXPECT_EQ(monitor.scan(runner.solver()).status, HealthStatus::kHealthy);
}

TEST(LivenessChannelFaults, LostHaloMessageIsDetectedAndRecovered) {
  // Drop the first halo message of the run: the destination rank blocks
  // forever in Channel::recv, the watchdog trips, and the runner
  // resumes and completes. Four ranks, so each pairwise channel carries
  // exactly one halo packet per step and the drop deterministically
  // leaves a receiver on an empty channel (with two ranks both halos
  // share a channel and a drop surfaces as a tag mismatch instead).
  SimulationParams p = liveness_params(SolverKind::kDistributed);
  p.num_threads = 4;
  ResilienceConfig cfg;
  cfg.checkpoint_interval = 5;
  cfg.health_interval = 5;
  cfg.max_retries = 2;
  cfg.watchdog_deadline_ms = 500;
  cfg.checkpoint_base = ::testing::TempDir() + "liveness_drop.ckpt";
  ResilientRunner runner(SolverKind::kDistributed, p, cfg);

  chaos::reset();
  chaos::arm_message_drop(0);

  const ResilienceReport report = runner.run(30);

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.steps_completed, 30);
  EXPECT_EQ(report.retries_used, 1);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_TRUE(report.events[0].hang);
  EXPECT_EQ(chaos::messages_dropped(), 1u);
  chaos::reset();
  ProgressBoard::global().clear_retired();
}

TEST(LivenessChannelFaults, DuplicatedHaloMessageRecoversViaErrorPath) {
  // A duplicated halo packet leaves a stale message in the channel; the
  // next tag-checked recv throws, the team unwinds, and the runner
  // recovers on the divergence path (no watchdog needed).
  const SimulationParams p = liveness_params(SolverKind::kDistributed);
  ResilienceConfig cfg;
  cfg.checkpoint_interval = 5;
  cfg.health_interval = 5;
  cfg.max_retries = 2;
  cfg.checkpoint_base = ::testing::TempDir() + "liveness_dup.ckpt";
  ResilientRunner runner(SolverKind::kDistributed, p, cfg);

  chaos::reset();
  chaos::arm_message_duplicate(0);

  const ResilienceReport report = runner.run(30);

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.steps_completed, 30);
  EXPECT_EQ(report.retries_used, 1);
  EXPECT_EQ(chaos::messages_duplicated(), 1u);
  chaos::reset();
  ProgressBoard::global().clear_retired();
}

TEST(LivenessCheckpointFaults, FailingCheckpointWritesDoNotKillTheRun) {
  const SimulationParams p = liveness_params(SolverKind::kSequential);
  ResilienceConfig cfg;
  cfg.checkpoint_interval = 5;
  cfg.health_interval = 5;
  cfg.keep_checkpoints = true;
  cfg.checkpoint_base = ::testing::TempDir() + "liveness_ckptfail.ckpt";
  ResilientRunner runner(SolverKind::kSequential, p, cfg);

  chaos::reset();
  chaos::arm_checkpoint_write_failures(2);

  const ResilienceReport report = runner.run(30);

  // The first two interval saves fail (logged, tolerated); later saves
  // land, so the run completes with zero retries and a usable rotation.
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.retries_used, 0);
  EXPECT_EQ(chaos::checkpoint_failures_remaining(), 0);
  EXPECT_TRUE(runner.rotation().has_checkpoint());
  runner.rotation().remove_files();
  chaos::reset();
}

// --- false-trip immunity ---------------------------------------------

TEST_P(LivenessTest, CleanRunNeverTripsTheWatchdog) {
  const SolverKind kind = GetParam();
  Simulation sim(kind, liveness_params(kind));
  sim.enable_watchdog(10000);
  sim.run(60);
  EXPECT_EQ(sim.steps_completed(), 60);
  ASSERT_NE(sim.watchdog(), nullptr);
  EXPECT_EQ(sim.watchdog()->trips(), 0);
  EXPECT_FALSE(sim.cancel_token().cancelled());
}

TEST(LivenessUserCancel, SimulationRunStopsAtNextCancelPoint) {
  SimulationParams p = liveness_params(SolverKind::kCube);
  Simulation sim(SolverKind::kCube, p);
  sim.on_step(1, [&sim](Solver&, Index step) {
    if (step == 4) {
      sim.cancel_token().cancel("enough", CancelCause::kUser);
    }
  });
  try {
    sim.run(1000);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.cause(), CancelCause::kUser);
  }
  EXPECT_LT(sim.steps_completed(), 1000);
  ProgressBoard::global().clear_retired();
}

INSTANTIATE_TEST_SUITE_P(
    StdThreadKinds, LivenessTest,
    ::testing::Values(SolverKind::kSequential, SolverKind::kCube,
                      SolverKind::kDataflow, SolverKind::kDistributed,
                      SolverKind::kDistributed2D),
    [](const ::testing::TestParamInfo<SolverKind>& info) {
      return std::string(solver_kind_name(info.param));
    });

}  // namespace
}  // namespace lbmib
