#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/autotune.hpp"

namespace lbmib {
namespace {

SimulationParams tune_params() {
  SimulationParams p = presets::tiny();  // 16^3 grid
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

TEST(Autotune, ReturnsAValidDivisor) {
  const TuneResult r = tune_cube_size(tune_params(), {2, 4, 8}, 1);
  EXPECT_TRUE(r.best_cube_size == 2 || r.best_cube_size == 4 ||
              r.best_cube_size == 8);
  EXPECT_EQ(tune_params().nx % r.best_cube_size, 0);
}

TEST(Autotune, TriesEveryDividingCandidate) {
  const TuneResult r = tune_cube_size(tune_params(), {2, 4, 8, 16}, 1);
  ASSERT_EQ(r.timings.size(), 4u);
  for (const CubeSizeTiming& t : r.timings) {
    EXPECT_GT(t.seconds_per_step, 0.0);
  }
}

TEST(Autotune, SkipsNonDividingCandidates) {
  const TuneResult r = tune_cube_size(tune_params(), {3, 4, 5, 7}, 1);
  ASSERT_EQ(r.timings.size(), 1u);  // only 4 divides 16
  EXPECT_EQ(r.best_cube_size, 4);
}

TEST(Autotune, BestIsMinimumOfTimings) {
  const TuneResult r = tune_cube_size(tune_params(), {2, 4, 8}, 1);
  double best = 1e30;
  Index best_k = 0;
  for (const CubeSizeTiming& t : r.timings) {
    if (t.seconds_per_step < best) {
      best = t.seconds_per_step;
      best_k = t.cube_size;
    }
  }
  EXPECT_EQ(r.best_cube_size, best_k);
}

TEST(Autotune, ThrowsWhenNothingDivides) {
  EXPECT_THROW(tune_cube_size(tune_params(), {3, 5, 7}, 1), Error);
  EXPECT_THROW(tune_cube_size(tune_params(), {}, 1), Error);
}

TEST(Autotune, RejectsZeroTrialSteps) {
  EXPECT_THROW(tune_cube_size(tune_params(), {4}, 0), Error);
}

TEST(Autotune, WorksWithMultipleThreads) {
  SimulationParams p = tune_params();
  p.num_threads = 2;
  const TuneResult r = tune_cube_size(p, {4, 8}, 1);
  EXPECT_TRUE(r.best_cube_size == 4 || r.best_cube_size == 8);
}

}  // namespace
}  // namespace lbmib
