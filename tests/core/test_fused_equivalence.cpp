// Fused-pipeline equivalence: for every solver implementation, the fused
// collide-stream + O(1) buffer-swap pipeline (params.fused_step = true,
// the default) must reproduce the paper's literal pipeline (collide in
// place, stream, full copy-back) exactly. Both paths run the same
// collision arithmetic per node (lbm/collision.hpp collide_node_array,
// lbm/mrt.hpp MrtOperator::collide_node), so BGK *and* MRT are required
// to be bit-identical — any drift means the fused kernels stream to the
// wrong slot or mishandle a boundary, not rounding.
//
// Also covers the swap-specific hazards: snapshot/checkpoint after an odd
// number of steps (swap parity flipped), restore into a fused solver, and
// conservation under the fused path.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/solver.hpp"
#include "core/verification.hpp"
#include "io/checkpoint.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

// The forced-scalar fused pipeline is required to be bit-identical to the
// reference pipeline — same per-node arithmetic, so any drift is a
// streaming/boundary bug. The vectorized pipeline performs the same
// operation sequence per lane, but the lane kernels live in their own
// translation unit and the compiler's fp-contraction may fuse different
// multiply-adds there; on some flow states (observed: inlet-outlet) that
// is worth a few ULPs (~1e-17 on O(1e-2) values). Vectorized legs
// therefore get this pure-rounding allowance, still ~1e12x tighter than
// any physical tolerance.
constexpr Real kContractionTol = 1e-14;

constexpr SolverKind kAllKinds[] = {
    SolverKind::kSequential,  SolverKind::kOpenMP,
    SolverKind::kCube,        SolverKind::kDataflow,
    SolverKind::kDistributed, SolverKind::kDistributed2D,
};

SimulationParams base_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  p.boundary = BoundaryType::kPeriodic;
  // Single worker: parallel spreading accumulates fiber forces in a
  // thread-dependent order, so bit-exact cross-pipeline comparison needs a
  // deterministic schedule. Multi-thread coverage (fiber-free, still
  // bit-exact) is below; tolerance-based multi-thread coverage lives in
  // test_randomized_equivalence.cpp.
  p.num_threads = 1;
  return p;
}

/// Run `kind` with both pipeline settings from identical params (except
/// fused_step) and return the state difference after `steps` steps.
StateDiff fused_vs_reference(SolverKind kind, SimulationParams p,
                             Index steps) {
  p.fused_step = false;
  auto reference = make_solver(kind, p);
  reference->run(steps);
  p.fused_step = true;
  auto fused = make_solver(kind, p);
  fused->run(steps);
  return compare_solvers(*reference, *fused);
}

class FusedEquivalence : public ::testing::TestWithParam<SolverKind> {};

TEST_P(FusedEquivalence, BitIdenticalAcrossBoundaryTypes) {
  for (BoundaryType boundary :
       {BoundaryType::kPeriodic, BoundaryType::kChannel,
        BoundaryType::kInletOutlet, BoundaryType::kCavity}) {
    SimulationParams p = base_params();
    p.boundary = boundary;
    switch (boundary) {
      case BoundaryType::kInletOutlet:
        p.body_force = {};
        p.inlet_velocity = {0.02, 0.0, 0.0};
        break;
      case BoundaryType::kCavity:
        p.body_force = {};
        p.lid_velocity = {0.03, 0.01, 0.0};
        break;
      default:
        break;
    }
    SCOPED_TRACE(p.summary());
    // 7 steps: odd, so the fused solvers end with flipped swap parity and
    // the snapshot path must still hand back the canonical buffer. The
    // scalar fused sweep is the structural contract: exactly zero, on
    // every boundary type.
    p.simd_step = false;
    EXPECT_EQ(fused_vs_reference(GetParam(), p, 7).max_any(), 0.0);
    // The vectorized sweep may differ by fp-contraction rounding only.
    p.simd_step = true;
    EXPECT_LE(fused_vs_reference(GetParam(), p, 7).max_any(),
              kContractionTol);
  }
}

TEST_P(FusedEquivalence, BitIdenticalWithMrtCollision) {
  SimulationParams p = base_params();
  p.collision = CollisionModel::kMRT;
  p.boundary = BoundaryType::kChannel;
  EXPECT_EQ(fused_vs_reference(GetParam(), p, 6).max_any(), 0.0);
}

TEST_P(FusedEquivalence, BitIdenticalWithObstacles) {
  // Interior solid nodes exercise the fused kernels' bounce-back-at-source
  // path and the requirement that solid df_new slots are zeroed, not
  // skipped.
  SimulationParams p = base_params();
  p.obstacles.push_back({{4.0, 8.0, 8.0}, 2.5});
  EXPECT_EQ(fused_vs_reference(GetParam(), p, 6).max_any(), 0.0);
}

TEST_P(FusedEquivalence, BitIdenticalWithoutFibers) {
  SimulationParams p = base_params();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  EXPECT_EQ(fused_vs_reference(GetParam(), p, 7).max_any(), 0.0);
}

TEST_P(FusedEquivalence, BitIdenticalWithFourWorkers) {
  // Fiber-free so the only parallel hazard left is the streaming/swap
  // protocol itself: any cross-worker race on df_new or a mistimed swap
  // shows up as a state difference.
  SimulationParams p = base_params();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  p.num_threads = 4;
  EXPECT_EQ(fused_vs_reference(GetParam(), p, 7).max_any(), 0.0);
}

/// Run `kind`'s fused pipeline twice — vectorized lane-block kernels vs
/// forced-scalar per-node path — and return the state difference.
StateDiff simd_vs_scalar(SolverKind kind, SimulationParams p,
                         Index steps) {
  p.fused_step = true;
  p.simd_step = false;
  auto scalar = make_solver(kind, p);
  scalar->run(steps);
  p.simd_step = true;
  auto simd = make_solver(kind, p);
  simd->run(steps);
  return compare_solvers(*scalar, *simd);
}

TEST_P(FusedEquivalence, VectorizedMatchesScalarBgk) {
  // The lane-block kernels perform exactly the scalar operation sequence
  // per lane with no cross-lane reductions; the only permitted deviation
  // is fp-contraction rounding (see kContractionTol) — never delete the
  // leg.
  for (BoundaryType boundary :
       {BoundaryType::kPeriodic, BoundaryType::kChannel,
        BoundaryType::kInletOutlet, BoundaryType::kCavity}) {
    SimulationParams p = base_params();
    p.boundary = boundary;
    if (boundary == BoundaryType::kInletOutlet) {
      p.body_force = {};
      p.inlet_velocity = {0.02, 0.0, 0.0};
    }
    if (boundary == BoundaryType::kCavity) {
      p.body_force = {};
      p.lid_velocity = {0.03, 0.01, 0.0};
    }
    SCOPED_TRACE(p.summary());
    EXPECT_LE(simd_vs_scalar(GetParam(), p, 7).max_any(),
              kContractionTol);
  }
}

TEST_P(FusedEquivalence, VectorizedMatchesScalarMrt) {
  SimulationParams p = base_params();
  p.collision = CollisionModel::kMRT;
  p.boundary = BoundaryType::kChannel;
  EXPECT_LE(simd_vs_scalar(GetParam(), p, 6).max_any(), kContractionTol);
}

TEST_P(FusedEquivalence, VectorizedMatchesScalarWithObstacles) {
  // Obstacles force row-by-row divergence between the clear-row vector
  // path and the scalar boundary path; the dispatch seam must not leak.
  SimulationParams p = base_params();
  p.obstacles.push_back({{4.0, 8.0, 8.0}, 2.5});
  EXPECT_LE(simd_vs_scalar(GetParam(), p, 6).max_any(), kContractionTol);
}

TEST_P(FusedEquivalence, TileSizeNeverChangesResults) {
  // Cache tiling only reorders the sweep; every df_new slot has exactly
  // one writer, so any tile extent must be bit-identical to tile_y = 1.
  SimulationParams base = base_params();
  base.num_fibers = 0;
  base.nodes_per_fiber = 0;
  SimulationParams p = base;
  p.tile_y = 1;
  auto reference = make_solver(GetParam(), p);
  reference->run(7);
  for (Index tile : {2, 3, 1024}) {
    p.tile_y = tile;
    auto tiled = make_solver(GetParam(), p);
    tiled->run(7);
    EXPECT_EQ(compare_solvers(*reference, *tiled).max_any(), 0.0)
        << "tile_y=" << tile;
  }
}

TEST_P(FusedEquivalence, FirstTouchNeverChangesResults) {
  // First-touch only changes which thread writes the initial pages, not
  // the values written; a multi-thread run must be bit-identical either
  // way.
  SimulationParams p = base_params();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  p.num_threads = 4;
  p.first_touch = true;
  auto touched = make_solver(GetParam(), p);
  touched->run(7);
  p.first_touch = false;
  auto serial_init = make_solver(GetParam(), p);
  serial_init->run(7);
  EXPECT_EQ(compare_solvers(*touched, *serial_init).max_any(), 0.0);
}

TEST_P(FusedEquivalence, MassAndMomentumConservedUnderFusedPath) {
  SimulationParams p = base_params();
  p.body_force = {};
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  p.initial_velocity = {0.02, 0.01, 0.0};
  p.fused_step = true;
  auto solver = make_solver(GetParam(), p);
  FluidGrid before(p.nx, p.ny, p.nz);
  solver->snapshot_fluid(before);
  const Real mass0 = before.total_mass();
  const Vec3 mom0 = before.total_momentum();
  solver->run(9);
  FluidGrid after(p.nx, p.ny, p.nz);
  solver->snapshot_fluid(after);
  EXPECT_NEAR(after.total_mass(), mass0, mass0 * 1e-10);
  EXPECT_NEAR(after.total_momentum().x, mom0.x, 1e-10);
  EXPECT_NEAR(after.total_momentum().y, mom0.y, 1e-10);
  EXPECT_NEAR(after.total_momentum().z, mom0.z, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, FusedEquivalence,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto& info) {
                           return std::string(
                               solver_kind_name(info.param));
                         });

// --- swap parity vs checkpoint/restore -----------------------------------

class FusedCheckpointTest : public ::testing::TestWithParam<SolverKind> {
 protected:
  // Per-param filename: the six solver instances are separate ctest
  // entries that may run concurrently under `ctest -j`, so a shared
  // checkpoint path races one instance's save against another's
  // TearDown unlink.
  void SetUp() override {
    path_ = ::testing::TempDir() + "lbmib_fused_parity_test_" +
            std::string(solver_kind_name(GetParam())) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_P(FusedCheckpointTest, OddStepCheckpointResumesIdentically) {
  // 7 + 6 split: the checkpoint is taken with the fused solver's swap
  // parity flipped. The snapshot must serialize the canonical (post-step)
  // distributions regardless of which physical buffer holds them, and a
  // fresh solver restored from it must continue bit-identically.
  SimulationParams p = base_params();
  p.fused_step = true;

  auto straight = make_solver(GetParam(), p);
  straight->run(13);

  auto first = make_solver(GetParam(), p);
  first->run(7);
  FluidGrid snapshot(p.nx, p.ny, p.nz);
  first->snapshot_fluid(snapshot);
  save_checkpoint(path_, snapshot, first->structure(),
                  first->steps_completed());

  auto second = make_solver(GetParam(), p);
  FluidGrid loaded(p.nx, p.ny, p.nz);
  Structure structure = second->structure();
  const Index step = load_checkpoint(path_, loaded, structure);
  ASSERT_EQ(step, 7);
  second->restore_state(loaded, structure, step);
  second->run(6);

  EXPECT_EQ(second->steps_completed(), 13);
  EXPECT_EQ(compare_solvers(*straight, *second).max_any(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, FusedCheckpointTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto& info) {
                           return std::string(
                               solver_kind_name(info.param));
                         });

}  // namespace
}  // namespace lbmib
