#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/cube_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams small_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

/// Sweep threads x cube sizes x distribution policies against the
/// sequential reference — the paper's correctness criterion for the
/// cube-based implementation.
using CubeCase = std::tuple<int, Index, DistributionPolicy>;

class CubeEquivalence : public ::testing::TestWithParam<CubeCase> {};

TEST_P(CubeEquivalence, MatchesSequential) {
  const auto [threads, cube_size, policy] = GetParam();
  SimulationParams p = small_params();
  SequentialSolver seq(p);
  p.num_threads = threads;
  p.cube_size = cube_size;
  CubeSolver cube(p, policy);
  seq.run(8);
  cube.run(8);
  const StateDiff diff = compare_solvers(seq, cube);
  EXPECT_LT(diff.max_any(), 1e-11) << diff.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CubeEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values<Index>(2, 4, 8),
                       ::testing::Values(DistributionPolicy::kBlock,
                                         DistributionPolicy::kCyclic)),
    [](const auto& info) {
      return std::string(std::get<2>(info.param) ==
                                 DistributionPolicy::kBlock
                             ? "block"
                             : "cyclic") +
             "_t" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CubeSolver, ChannelFlowMatchesSequential) {
  SimulationParams p = small_params();
  p.boundary = BoundaryType::kChannel;
  p.sheet_origin = {6.0, 6.0, 6.0};
  SequentialSolver seq(p);
  p.num_threads = 4;
  CubeSolver cube(p);
  seq.run(8);
  cube.run(8);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
}

TEST(CubeSolver, SpinBarrierVariantMatchesSequential) {
  SimulationParams p = small_params();
  SequentialSolver seq(p);
  p.num_threads = 3;
  CubeSolver cube(p, DistributionPolicy::kBlock, BarrierKind::kSpin);
  seq.run(5);
  cube.run(5);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
}

TEST(CubeSolver, StepByStepMatchesSingleRun) {
  SimulationParams p = small_params();
  p.num_threads = 2;
  CubeSolver a(p), b(p);
  a.run(6);
  for (int i = 0; i < 6; ++i) b.step();
  EXPECT_LT(compare_solvers(a, b).max_any(), 1e-12);
  EXPECT_EQ(a.steps_completed(), b.steps_completed());
}

TEST(CubeSolver, ObserverRunsAtIntervalDuringTeamRun) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  CubeSolver solver(p);
  std::vector<Index> seen;
  solver.run(
      9, [&](Solver&, Index step) { seen.push_back(step); }, 3);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 2);
  EXPECT_EQ(seen[2], 8);
}

TEST(CubeSolver, ObserverCanSnapshotConsistentState) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  CubeSolver solver(p);
  SequentialSolver reference(small_params());
  Real max_diff = 0.0;
  solver.run(
      6,
      [&](Solver& s, Index) {
        reference.run(3);
        max_diff = std::max(max_diff,
                            compare_solvers(reference, s).max_any());
      },
      3);
  EXPECT_LT(max_diff, 1e-11);
}

TEST(CubeSolver, MoreThreadsThanCubes) {
  SimulationParams p = small_params();
  p.cube_size = 8;  // 16^3 grid -> 2x2x2 = 8 cubes
  SequentialSolver seq(p);
  p.num_threads = 12;  // some threads own nothing
  CubeSolver cube(p);
  seq.run(4);
  cube.run(4);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
}

TEST(CubeSolver, PerThreadProfilesExposeLoadSplit) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  CubeSolver solver(p);
  solver.run(3);
  const auto profiles = solver.per_thread_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  double total = 0.0;
  for (const auto& prof : profiles) total += prof.total_seconds();
  EXPECT_GT(total, 0.0);
}

TEST(CubeSolver, ExposesDistributionAndMesh) {
  SimulationParams p = small_params();
  p.num_threads = 8;
  CubeSolver solver(p);
  EXPECT_EQ(solver.thread_mesh().size(), 8);
  EXPECT_EQ(solver.distribution().cubes_x(), p.nx / p.cube_size);
  EXPECT_EQ(solver.name(), "cube");
}

TEST(CubeSolver, ZeroFiberSimulation) {
  SimulationParams p = small_params();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  p.num_threads = 4;
  CubeSolver solver(p);
  solver.run(5);
  EXPECT_EQ(solver.steps_completed(), 5);
}

TEST(CubeSolver, RunZeroStepsIsNoOp) {
  SimulationParams p = small_params();
  CubeSolver solver(p);
  solver.run(0);
  EXPECT_EQ(solver.steps_completed(), 0);
}

}  // namespace
}  // namespace lbmib
