// Randomized cross-solver property test: for deterministic pseudo-random
// configurations (grid shapes, cube sizes, boundary types, collision
// models, stiffnesses, thread counts), every parallel solver must
// reproduce the sequential solver. This is the paper's correctness
// methodology ("all the numerical results have been verified ... by
// comparing to the sequential implementation") applied as a sweep.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/cube_solver.hpp"
#include "core/dataflow_solver.hpp"
#include "core/distributed_solver.hpp"
#include "core/openmp_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams random_params(SplitMix64& rng) {
  SimulationParams p;
  // Grid dims: multiples of 4 in [12, 24] so cube sizes 2 and 4 divide.
  auto dim = [&] { return 12 + 4 * static_cast<Index>(rng.next_below(4)); };
  p.nx = dim();
  p.ny = dim();
  p.nz = dim();
  p.tau = 0.6 + 0.4 * rng.next_double();
  p.collision = rng.next_below(2) == 0 ? CollisionModel::kBGK
                                       : CollisionModel::kMRT;
  const int boundary = static_cast<int>(rng.next_below(3));
  p.boundary = boundary == 0 ? BoundaryType::kPeriodic
                             : (boundary == 1 ? BoundaryType::kChannel
                                              : BoundaryType::kCavity);
  if (p.boundary == BoundaryType::kCavity) {
    p.lid_velocity = {0.02 + 0.03 * rng.next_double(), 0.0, 0.0};
  } else {
    p.body_force = {1e-5 * rng.next_double(), 0.0, 0.0};
    p.initial_velocity = {0.02 * rng.next_double(), 0.0, 0.0};
  }
  p.num_fibers = 3 + static_cast<Index>(rng.next_below(5));
  p.nodes_per_fiber = 3 + static_cast<Index>(rng.next_below(5));
  p.sheet_width = 2.0 + 2.0 * rng.next_double();
  p.sheet_height = 2.0 + 2.0 * rng.next_double();
  p.sheet_origin = {4.0 + rng.next_double() * (p.nx - 9),
                    4.0 + rng.next_double() * (p.ny - 9),
                    4.0 + rng.next_double() * (p.nz - 9)};
  p.stretching_coeff = 0.05 * rng.next_double();
  p.bending_coeff = 0.005 * rng.next_double();
  p.pin_mode = rng.next_below(2) == 0 ? PinMode::kNone
                                      : PinMode::kLeadingEdge;
  if (p.pin_mode != PinMode::kNone && rng.next_below(2) == 0) {
    p.tether_coeff = 0.2 * rng.next_double();
  }
  p.cube_size = rng.next_below(2) == 0 ? 2 : 4;
  p.num_threads = 2 + static_cast<int>(rng.next_below(4));
  return p;
}

class RandomizedEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedEquivalence, AllSolversMatchSequential) {
  SplitMix64 rng(GetParam());
  SimulationParams p = random_params(rng);
  SCOPED_TRACE(p.summary());
  ASSERT_NO_THROW(p.validate());

  SimulationParams p_seq = p;
  p_seq.num_threads = 1;
  SequentialSolver seq(p_seq);
  seq.run(5);

  OpenMPSolver omp(p);
  omp.run(5);
  EXPECT_LT(compare_solvers(seq, omp).max_any(), 1e-11) << "openmp";

  CubeSolver cube(p);
  cube.run(5);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11) << "cube";

  DataflowCubeSolver flow(p);
  flow.run(5);
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-11) << "dataflow";

  DistributedSolver dist(p);
  dist.run(5);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-11) << "distributed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace lbmib
