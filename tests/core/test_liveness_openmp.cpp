// OpenMP liveness cases, kept out of the TSan `concurrency` label (GCC's
// libgomp is not TSan-instrumented). The OpenMP solver's cancellation
// and heartbeat hooks live at the step boundary — exceptions must not
// escape a `#pragma omp parallel` region — so these tests pin down
// exactly that contract: a stall at "openmp:step" is detected, recovered
// from, and a clean run never trips.
#include <gtest/gtest.h>

#include <string>

#include "core/fault_injection.hpp"
#include "core/resilient_runner.hpp"
#include "core/simulation.hpp"
#include "core/watchdog.hpp"
#include "parallel/cancel.hpp"

namespace lbmib {
namespace {

SimulationParams openmp_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  p.num_threads = 2;
  return p;
}

class OpenMPLivenessTest : public ::testing::Test {
 protected:
  void SetUp() override { chaos::reset(); }
  void TearDown() override {
    chaos::reset();
    ProgressBoard::global().clear_retired();
  }
};

TEST_F(OpenMPLivenessTest, WatchdogDetectsStallAtStepBoundary) {
  Simulation sim(SolverKind::kOpenMP, openmp_params());
  sim.enable_watchdog(500);

  chaos::StallSpec stall;
  stall.point_substr = "openmp:step";
  stall.duration_ms = -1;
  chaos::arm_stall(stall);

  try {
    sim.run(50);
    FAIL() << "expected the watchdog to cancel the stalled run";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.cause(), CancelCause::kWatchdog);
  }
  ASSERT_NE(sim.watchdog(), nullptr);
  EXPECT_EQ(sim.watchdog()->trips(), 1);
  const std::string report = sim.watchdog()->last_report();
  EXPECT_NE(report.find("openmp:step"), std::string::npos);
  EXPECT_NE(report.find("STUCK"), std::string::npos);
}

TEST_F(OpenMPLivenessTest, ResilientRunnerRecoversFromStall) {
  const SimulationParams p = openmp_params();
  ResilienceConfig cfg;
  cfg.checkpoint_interval = 5;
  cfg.health_interval = 5;
  cfg.max_retries = 2;
  cfg.watchdog_deadline_ms = 500;
  cfg.checkpoint_base = ::testing::TempDir() + "liveness_openmp.ckpt";
  ResilientRunner runner(SolverKind::kOpenMP, p, cfg);

  chaos::StallSpec stall;
  stall.point_substr = "openmp:step";
  stall.duration_ms = -1;
  chaos::arm_stall(stall);

  const ResilienceReport report = runner.run(30);

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.steps_completed, 30);
  EXPECT_EQ(report.retries_used, 1);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_TRUE(report.events[0].hang);
  EXPECT_EQ(report.events[0].new_num_threads, 1);
  EXPECT_EQ(runner.current_params().tau, p.tau);
}

TEST_F(OpenMPLivenessTest, CleanRunNeverTrips) {
  Simulation sim(SolverKind::kOpenMP, openmp_params());
  sim.enable_watchdog(10000);
  sim.run(60);
  EXPECT_EQ(sim.steps_completed(), 60);
  EXPECT_EQ(sim.watchdog()->trips(), 0);
  EXPECT_FALSE(sim.cancel_token().cancelled());
}

}  // namespace
}  // namespace lbmib
