// Time-step overlap (fiber-free dataflow runs): the cross-step task graph
// must reproduce the barriered execution exactly.
#include <gtest/gtest.h>

#include <numeric>

#include "core/dataflow_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams fluid_only_params() {
  SimulationParams p = presets::tiny();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

class OverlappedSteps : public ::testing::TestWithParam<int> {};

TEST_P(OverlappedSteps, MatchesSequentialPeriodic) {
  SimulationParams p = fluid_only_params();
  SequentialSolver seq(p);
  seq.run(12);
  p.num_threads = GetParam();
  DataflowCubeSolver flow(p);
  flow.run(12);  // takes the overlapped path (no fibers, no observer)
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-12);
  EXPECT_EQ(flow.steps_completed(), 12);
}

TEST_P(OverlappedSteps, MatchesSequentialChannel) {
  SimulationParams p = fluid_only_params();
  p.boundary = BoundaryType::kChannel;
  SequentialSolver seq(p);
  seq.run(10);
  p.num_threads = GetParam();
  DataflowCubeSolver flow(p);
  flow.run(10);
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-12);
}

TEST_P(OverlappedSteps, MatchesSequentialInletOutlet) {
  SimulationParams p;
  p.nx = 24;
  p.ny = 12;
  p.nz = 12;
  p.boundary = BoundaryType::kInletOutlet;
  p.inlet_velocity = {0.03, 0.0, 0.0};
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  SequentialSolver seq(p);
  seq.run(10);
  p.num_threads = GetParam();
  DataflowCubeSolver flow(p);
  flow.run(10);
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Threads, OverlappedSteps,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(OverlappedStepsMisc, ExecutesEveryTaskOnce) {
  SimulationParams p = fluid_only_params();
  p.num_threads = 4;
  DataflowCubeSolver flow(p);
  const Index steps = 9;
  flow.run(steps);
  const Size total = std::accumulate(flow.tasks_executed().begin(),
                                     flow.tasks_executed().end(), Size{0});
  EXPECT_EQ(total, 2 * flow.cubes().num_cubes() * static_cast<Size>(steps));
}

TEST(OverlappedStepsMisc, MixingOverlappedAndStepwiseRuns) {
  // Overlapped run followed by single steps followed by another
  // overlapped run must match one continuous sequential run.
  SimulationParams p = fluid_only_params();
  SequentialSolver seq(p);
  seq.run(14);
  p.num_threads = 3;
  DataflowCubeSolver flow(p);
  flow.run(6);   // overlapped
  flow.run(1);   // stepwise (num_steps == 1)
  flow.step();   // stepwise
  flow.run(6);   // overlapped again
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-12);
  EXPECT_EQ(flow.steps_completed(), 14);
}

TEST(OverlappedStepsMisc, ObserverForcesStepwisePath) {
  SimulationParams p = fluid_only_params();
  p.num_threads = 4;
  DataflowCubeSolver flow(p);
  std::vector<Index> seen;
  flow.run(
      6, [&](Solver&, Index s) { seen.push_back(s); }, 2);
  EXPECT_EQ(seen.size(), 3u);  // the per-step path honours observers
}

TEST(OverlappedStepsMisc, MrtOverlappedMatchesSequential) {
  SimulationParams p = fluid_only_params();
  p.collision = CollisionModel::kMRT;
  SequentialSolver seq(p);
  seq.run(8);
  p.num_threads = 4;
  DataflowCubeSolver flow(p);
  flow.run(8);
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-12);
}

}  // namespace
}  // namespace lbmib
