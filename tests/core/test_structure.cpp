// Multi-sheet immersed structures: the paper's "a 3D flexible structure
// can be comprised of a number of 2-D sheets".
#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "core/cube_solver.hpp"
#include "core/openmp_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"
#include "io/checkpoint.hpp"

namespace lbmib {
namespace {

SimulationParams two_sheet_params() {
  SimulationParams p = presets::tiny();
  p.initial_velocity = {0.02, 0.0, 0.0};
  SheetSpec second;
  second.num_fibers = 5;
  second.nodes_per_fiber = 7;
  second.width = 3.0;
  second.height = 4.0;
  second.origin = {10.0, 4.0, 4.0};
  second.stretching_coeff = 0.03;
  second.bending_coeff = 0.003;
  second.pin_mode = PinMode::kLeadingEdge;
  p.extra_sheets.push_back(second);
  return p;
}

TEST(Structure, MakeStructureBuildsAllSheets) {
  const Structure s = make_structure(two_sheet_params());
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].num_fibers(), presets::tiny().num_fibers);
  EXPECT_EQ(s[1].num_fibers(), 5);
  EXPECT_EQ(s[1].nodes_per_fiber(), 7);
  EXPECT_TRUE(s[1].pinned(s[1].id(0, 0)));  // leading-edge pin applied
}

TEST(Structure, EmptyParamsYieldOneEmptySheet) {
  SimulationParams p = presets::tiny();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  const Structure s = make_structure(p);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].num_nodes(), 0u);
}

TEST(Structure, CountsAggregateOverSheets) {
  const Structure s = make_structure(two_sheet_params());
  EXPECT_EQ(structure_num_fibers(s), presets::tiny().num_fibers + 5);
  EXPECT_EQ(structure_num_nodes(s),
            presets::tiny().fiber_nodes() + 35u);
}

TEST(Structure, ParamsFiberNodesIncludeExtraSheets) {
  EXPECT_EQ(two_sheet_params().fiber_nodes(),
            presets::tiny().fiber_nodes() + 35u);
}

TEST(Structure, ValidateRejectsEmptyExtraSheet) {
  SimulationParams p = presets::tiny();
  p.extra_sheets.push_back(SheetSpec{});
  EXPECT_THROW(p.validate(), Error);
}

TEST(Structure, SolverExposesAllSheets) {
  SequentialSolver solver(two_sheet_params());
  ASSERT_EQ(solver.structure().size(), 2u);
  EXPECT_EQ(&solver.sheet(), &solver.structure()[0]);
}

TEST(Structure, BothSheetsAdvectWithTheFlow) {
  SequentialSolver solver(two_sheet_params());
  const Real x0_a = solver.structure()[0].centroid().x;
  const Real x0_b = solver.structure()[1].centroid().x;
  solver.run(10);
  EXPECT_GT(solver.structure()[0].centroid().x, x0_a + 0.1);
  // Second sheet is leading-edge pinned: it deforms but its pinned column
  // stays.
  EXPECT_GT(solver.structure()[1].centroid().x, x0_b);
  EXPECT_DOUBLE_EQ(solver.structure()[1].position(0, 0).x, 10.0);
}

TEST(Structure, OpenMPMatchesSequentialWithTwoSheets) {
  SimulationParams p = two_sheet_params();
  SequentialSolver seq(p);
  p.num_threads = 4;
  OpenMPSolver omp(p);
  seq.run(8);
  omp.run(8);
  EXPECT_LT(compare_solvers(seq, omp).max_any(), 1e-11);
}

TEST(Structure, CubeMatchesSequentialWithTwoSheets) {
  SimulationParams p = two_sheet_params();
  SequentialSolver seq(p);
  p.num_threads = 4;
  CubeSolver cube(p);
  seq.run(8);
  cube.run(8);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
}

TEST(Structure, CubeCyclicFiberDistributionWithTwoSheets) {
  SimulationParams p = two_sheet_params();
  SequentialSolver seq(p);
  p.num_threads = 3;
  CubeSolver cube(p, DistributionPolicy::kCyclic);
  seq.run(6);
  cube.run(6);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
}

TEST(Structure, CheckpointRoundTripMultiSheet) {
  const std::string path =
      ::testing::TempDir() + "lbmib_structure_checkpoint.bin";
  SimulationParams p = two_sheet_params();
  SequentialSolver a(p);
  a.run(5);
  FluidGrid grid(p.nx, p.ny, p.nz);
  a.snapshot_fluid(grid);
  save_checkpoint(path, grid, a.structure());

  SequentialSolver b(p);
  FluidGrid grid2(p.nx, p.ny, p.nz);
  load_checkpoint(path, grid2, b.structure());
  EXPECT_EQ(compare_structures(a.structure(), b.structure()).max_any(),
            0.0);
  std::remove(path.c_str());
}

TEST(Structure, CheckpointRejectsSheetCountMismatch) {
  const std::string path =
      ::testing::TempDir() + "lbmib_structure_checkpoint2.bin";
  SimulationParams p = two_sheet_params();
  SequentialSolver a(p);
  FluidGrid grid(p.nx, p.ny, p.nz);
  a.snapshot_fluid(grid);
  save_checkpoint(path, grid, a.structure());

  Structure one_sheet = make_structure(presets::tiny());
  EXPECT_THROW(load_checkpoint(path, grid, one_sheet), Error);
  std::remove(path.c_str());
}

TEST(Structure, SingleAndMultiCheckpointFormatsAgree) {
  // A structure of one sheet and the single-sheet API produce mutually
  // readable files.
  const std::string path =
      ::testing::TempDir() + "lbmib_structure_checkpoint3.bin";
  SimulationParams p = presets::tiny();
  SequentialSolver a(p);
  a.run(3);
  FluidGrid grid(p.nx, p.ny, p.nz);
  a.snapshot_fluid(grid);
  save_checkpoint(path, grid, a.structure());  // multi-sheet writer

  FiberSheet sheet(p);
  FluidGrid grid2(p.nx, p.ny, p.nz);
  load_checkpoint(path, grid2, sheet);  // single-sheet reader
  EXPECT_EQ(compare_sheets(a.sheet(), sheet).max_any(), 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lbmib
