#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/simulation.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

TEST(Simulation, FactoryCreatesEachKind) {
  const SimulationParams p = presets::tiny();
  for (SolverKind kind :
       {SolverKind::kSequential, SolverKind::kOpenMP, SolverKind::kCube,
        SolverKind::kDataflow, SolverKind::kDistributed,
        SolverKind::kDistributed2D}) {
    Simulation sim(kind, p);
    EXPECT_EQ(sim.solver().name(), solver_kind_name(kind));
  }
}

TEST(Simulation, RunsAndTracksSteps) {
  Simulation sim(SolverKind::kSequential, presets::tiny());
  sim.run(4);
  EXPECT_EQ(sim.steps_completed(), 4);
  sim.run(2);
  EXPECT_EQ(sim.steps_completed(), 6);
}

TEST(Simulation, ObserverFiresOnInterval) {
  Simulation sim(SolverKind::kSequential, presets::tiny());
  int calls = 0;
  sim.on_step(2, [&](Solver&, Index) { ++calls; });
  sim.run(10);
  EXPECT_EQ(calls, 5);
}

TEST(Simulation, ObserverIntervalMustBePositive) {
  Simulation sim(SolverKind::kSequential, presets::tiny());
  EXPECT_THROW(sim.on_step(0, [](Solver&, Index) {}), Error);
}

TEST(Simulation, AllKindsAgree) {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  Simulation seq(SolverKind::kSequential, p);
  seq.run(6);
  p.num_threads = 4;
  for (SolverKind kind :
       {SolverKind::kOpenMP, SolverKind::kCube, SolverKind::kDataflow,
        SolverKind::kDistributed, SolverKind::kDistributed2D}) {
    Simulation sim(kind, p);
    sim.run(6);
    EXPECT_LT(compare_solvers(seq.solver(), sim.solver()).max_any(), 1e-11)
        << solver_kind_name(kind);
  }
}

TEST(Simulation, ProfileReportNonEmptyAfterRun) {
  Simulation sim(SolverKind::kSequential, presets::tiny());
  sim.run(2);
  const std::string report = sim.profile_report();
  EXPECT_NE(report.find("compute_fluid_collision"), std::string::npos);
}

TEST(Simulation, SolverKindNames) {
  EXPECT_EQ(solver_kind_name(SolverKind::kSequential), "sequential");
  EXPECT_EQ(solver_kind_name(SolverKind::kOpenMP), "openmp");
  EXPECT_EQ(solver_kind_name(SolverKind::kCube), "cube");
}

TEST(Simulation, InvalidParamsRejectedAtConstruction) {
  SimulationParams p = presets::tiny();
  p.tau = 0.4;
  EXPECT_THROW(Simulation(SolverKind::kSequential, p), Error);
}

}  // namespace
}  // namespace lbmib
