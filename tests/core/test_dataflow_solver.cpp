#include <gtest/gtest.h>

#include <numeric>

#include "core/dataflow_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams small_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

/// The dynamically scheduled solver must reproduce the sequential result
/// for any thread count and cube size (atomic spreading reorders floating
/// point adds, so compare to tight tolerance rather than bit-exactly).
class DataflowEquivalence
    : public ::testing::TestWithParam<std::tuple<int, Index>> {};

TEST_P(DataflowEquivalence, MatchesSequential) {
  const int threads = std::get<0>(GetParam());
  const Index cube_size = std::get<1>(GetParam());
  SimulationParams p = small_params();
  SequentialSolver seq(p);
  p.num_threads = threads;
  p.cube_size = cube_size;
  DataflowCubeSolver flow(p);
  seq.run(8);
  flow.run(8);
  const StateDiff diff = compare_solvers(seq, flow);
  EXPECT_LT(diff.max_any(), 1e-11) << diff.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DataflowEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values<Index>(2, 4, 8)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DataflowSolver, ChannelFlowMatchesSequential) {
  SimulationParams p = small_params();
  p.boundary = BoundaryType::kChannel;
  p.sheet_origin = {6.0, 6.0, 6.0};
  SequentialSolver seq(p);
  p.num_threads = 4;
  DataflowCubeSolver flow(p);
  seq.run(8);
  flow.run(8);
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-11);
}

TEST(DataflowSolver, MultiSheetMatchesSequential) {
  SimulationParams p = small_params();
  SheetSpec second;
  second.num_fibers = 4;
  second.nodes_per_fiber = 5;
  second.width = 2.0;
  second.height = 3.0;
  second.origin = {10.0, 5.0, 5.0};
  second.stretching_coeff = 0.02;
  second.bending_coeff = 0.002;
  p.extra_sheets.push_back(second);
  SequentialSolver seq(p);
  p.num_threads = 3;
  DataflowCubeSolver flow(p);
  seq.run(6);
  flow.run(6);
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-11);
}

TEST(DataflowSolver, EveryTaskExecutedExactlyOncePerStep) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  DataflowCubeSolver flow(p);
  const Index steps = 5;
  flow.run(steps);
  const Size total = std::accumulate(flow.tasks_executed().begin(),
                                     flow.tasks_executed().end(), Size{0});
  EXPECT_EQ(total, 2 * flow.cubes().num_cubes() * static_cast<Size>(steps));
}

TEST(DataflowSolver, WorkIsSharedAcrossThreads) {
  // With self-scheduling every thread should execute some tasks (on an
  // oversubscribed host a thread can in principle starve, so only require
  // that at least two threads participated across a longer run).
  SimulationParams p = small_params();
  p.num_threads = 4;
  DataflowCubeSolver flow(p);
  flow.run(10);
  int participating = 0;
  for (Size t : flow.tasks_executed()) {
    if (t > 0) ++participating;
  }
  EXPECT_GE(participating, 2);
}

TEST(DataflowSolver, StepByStepMatchesSingleRun) {
  SimulationParams p = small_params();
  p.num_threads = 2;
  DataflowCubeSolver a(p), b(p);
  a.run(6);
  for (int i = 0; i < 6; ++i) b.step();
  EXPECT_LT(compare_solvers(a, b).max_any(), 1e-11);
}

TEST(DataflowSolver, ObserverRunsAtInterval) {
  SimulationParams p = small_params();
  p.num_threads = 4;
  DataflowCubeSolver flow(p);
  std::vector<Index> seen;
  flow.run(
      6, [&](Solver&, Index step) { seen.push_back(step); }, 2);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 1);
  EXPECT_EQ(seen[2], 5);
}

TEST(DataflowSolver, ZeroFiberSimulation) {
  SimulationParams p = small_params();
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  p.num_threads = 4;
  DataflowCubeSolver flow(p);
  flow.run(5);
  EXPECT_EQ(flow.steps_completed(), 5);
}

TEST(DataflowSolver, AvailableThroughFactory) {
  auto solver = make_solver(SolverKind::kDataflow, small_params());
  EXPECT_EQ(solver->name(), "dataflow");
  solver->run(2);
  EXPECT_EQ(solver->steps_completed(), 2);
}

TEST(DataflowSolver, SingleCubeGridStillWorks) {
  // Degenerate dataflow: one cube whose region is itself; the pipeline
  // must not deadlock.
  SimulationParams p = small_params();
  p.cube_size = 16;  // 16^3 grid -> a single cube
  p.num_threads = 4;
  SequentialSolver seq(small_params());
  DataflowCubeSolver flow(p);
  seq.run(4);
  flow.run(4);
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-11);
}

}  // namespace
}  // namespace lbmib
