// The ThreadSanitizer test path for the std::thread solvers.
//
// Every multi-threaded solver built on ThreadTeam (cube, dataflow,
// distributed 1-D, distributed 2-D) is driven here with several thread
// counts, both barrier flavours, and the observer path active, then
// cross-checked against the sequential reference. The suite is labeled
// `concurrency` in tests/CMakeLists.txt; `scripts/run_sanitized_tests.sh
// thread` builds with -DLBMIB_SANITIZE=thread and runs exactly this label,
// so any release/acquire mistake in SpinLock, the barriers, Channel, the
// communicator replica sync, or the dataflow dependency counters surfaces
// as a TSan report here. (The OpenMP solver is exercised by its own suite;
// it is excluded from the TSan label because GCC's libgomp is not
// TSan-instrumented and reports false positives — see tsan.supp.)
#include <gtest/gtest.h>

#include <atomic>

#include "core/cube_solver.hpp"
#include "core/dataflow_solver.hpp"
#include "core/distributed2d_solver.hpp"
#include "core/distributed_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams stress_params() {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  return p;
}

constexpr Index kSteps = 4;

/// Sequential reference, computed once per suite run.
const SequentialSolver& reference() {
  static SequentialSolver* seq = [] {
    auto* s = new SequentialSolver(stress_params());
    s->run(kSteps);
    return s;
  }();
  return *seq;
}

class CubeSolverConcurrency
    : public ::testing::TestWithParam<std::tuple<int, BarrierKind>> {};

TEST_P(CubeSolverConcurrency, LockedSpreadMatchesSequential) {
  SimulationParams p = stress_params();
  p.num_threads = std::get<0>(GetParam());
  CubeSolver cube(p, DistributionPolicy::kBlock, std::get<1>(GetParam()));
  cube.run(kSteps);
  EXPECT_LT(compare_solvers(reference(), cube).max_any(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Threads, CubeSolverConcurrency,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(BarrierKind::kSpin,
                                         BarrierKind::kBlocking)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == BarrierKind::kSpin ? "_spin"
                                                            : "_blocking");
    });

TEST(CubeSolverConcurrencyObserver, ObserverBarrierPathIsRaceFree) {
  // The observer runs on tid 0 while the team waits at the extra barrier;
  // the callback reads solver state (steps_completed, structure).
  SimulationParams p = stress_params();
  p.num_threads = 4;
  CubeSolver cube(p);
  std::atomic<int> calls{0};
  cube.run(kSteps, [&](Solver& s, Index step) {
    calls.fetch_add(1);
    EXPECT_EQ(s.steps_completed(), step + 1);
  });
  EXPECT_EQ(calls.load(), static_cast<int>(kSteps));
}

class DataflowConcurrency : public ::testing::TestWithParam<int> {};

TEST_P(DataflowConcurrency, DynamicSchedulingMatchesSequential) {
  // Atomic work queue + dependency counters + atomic force scatter: the
  // densest concentration of relaxed/acquire/release traffic in the repo.
  SimulationParams p = stress_params();
  p.num_threads = GetParam();
  DataflowCubeSolver dataflow(p);
  dataflow.run(kSteps);
  EXPECT_LT(compare_solvers(reference(), dataflow).max_any(), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Threads, DataflowConcurrency,
                         ::testing::Values(2, 3, 4),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

class DistributedConcurrency : public ::testing::TestWithParam<int> {};

TEST_P(DistributedConcurrency, HaloExchangeMatchesSequential) {
  // Channel/Communicator path: halo packets + deterministic allreduce of
  // the fiber replicas.
  SimulationParams p = stress_params();
  p.num_threads = GetParam();
  DistributedSolver dist(p);
  dist.run(kSteps);
  EXPECT_LT(compare_solvers(reference(), dist).max_any(), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedConcurrency,
                         ::testing::Values(2, 3, 4),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param);
                         });

class Distributed2DConcurrency : public ::testing::TestWithParam<int> {};

TEST_P(Distributed2DConcurrency, TileHalosMatchSequential) {
  SimulationParams p = stress_params();
  p.num_threads = GetParam();
  Distributed2DSolver dist(p);
  dist.run(kSteps);
  EXPECT_LT(compare_solvers(reference(), dist).max_any(), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Ranks, Distributed2DConcurrency,
                         ::testing::Values(2, 4, 6),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param);
                         });

TEST(SolverConcurrency, RepeatedRunsReuseTeamsCleanly) {
  // run() launches a fresh team each call; state handed across the join
  // (profilers, steps_completed, fiber replicas) must be synchronized by
  // the join itself.
  SimulationParams p = stress_params();
  p.num_threads = 4;
  CubeSolver cube(p);
  for (int i = 0; i < 3; ++i) cube.run(1);
  SequentialSolver seq(stress_params());
  seq.run(3);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-12);
  EXPECT_EQ(cube.steps_completed(), 3);
}

}  // namespace
}  // namespace lbmib
