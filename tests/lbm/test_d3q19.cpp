#include <gtest/gtest.h>

#include "lbm/d3q19.hpp"

namespace lbmib {
namespace {

using namespace d3q19;

TEST(D3Q19, WeightsSumToOne) {
  Real sum = 0.0;
  for (int i = 0; i < kQ; ++i) sum += w[static_cast<Size>(i)];
  EXPECT_NEAR(sum, 1.0, 1e-15);
}

TEST(D3Q19, VelocitiesSumToZero) {
  int sx = 0, sy = 0, sz = 0;
  for (int i = 0; i < kQ; ++i) {
    sx += cx[static_cast<Size>(i)];
    sy += cy[static_cast<Size>(i)];
    sz += cz[static_cast<Size>(i)];
  }
  EXPECT_EQ(sx, 0);
  EXPECT_EQ(sy, 0);
  EXPECT_EQ(sz, 0);
}

TEST(D3Q19, EighteenMovingDirections) {
  // Figure 2: "A particle at the center can move along 18 different
  // directions", plus rest.
  int moving = 0;
  for (int i = 0; i < kQ; ++i) {
    const int mag2 = cx[static_cast<Size>(i)] * cx[static_cast<Size>(i)] +
                     cy[static_cast<Size>(i)] * cy[static_cast<Size>(i)] +
                     cz[static_cast<Size>(i)] * cz[static_cast<Size>(i)];
    if (mag2 > 0) ++moving;
    EXPECT_LE(mag2, 2);  // axis (1) or face diagonal (2), never corner (3)
  }
  EXPECT_EQ(moving, 18);
}

TEST(D3Q19, DirectionsAreDistinct) {
  for (int i = 0; i < kQ; ++i) {
    for (int j = i + 1; j < kQ; ++j) {
      const bool same = cx[static_cast<Size>(i)] == cx[static_cast<Size>(j)] &&
                        cy[static_cast<Size>(i)] == cy[static_cast<Size>(j)] &&
                        cz[static_cast<Size>(i)] == cz[static_cast<Size>(j)];
      EXPECT_FALSE(same) << "directions " << i << " and " << j;
    }
  }
}

TEST(D3Q19, WeightMatchesSpeed) {
  for (int i = 0; i < kQ; ++i) {
    const int mag2 = cx[static_cast<Size>(i)] * cx[static_cast<Size>(i)] +
                     cy[static_cast<Size>(i)] * cy[static_cast<Size>(i)] +
                     cz[static_cast<Size>(i)] * cz[static_cast<Size>(i)];
    const Real expected =
        mag2 == 0 ? Real{1} / 3 : (mag2 == 1 ? Real{1} / 18 : Real{1} / 36);
    EXPECT_DOUBLE_EQ(w[static_cast<Size>(i)], expected);
  }
}

TEST(D3Q19, OppositeIsInvolutionAndNegates) {
  for (int i = 0; i < kQ; ++i) {
    const int o = opposite(i);
    EXPECT_EQ(opposite(o), i);
    EXPECT_EQ(cx[static_cast<Size>(o)], -cx[static_cast<Size>(i)]);
    EXPECT_EQ(cy[static_cast<Size>(o)], -cy[static_cast<Size>(i)]);
    EXPECT_EQ(cz[static_cast<Size>(o)], -cz[static_cast<Size>(i)]);
  }
  EXPECT_EQ(opposite(0), 0);
}

TEST(D3Q19, SecondMomentIsotropy) {
  // sum_i w_i c_ia c_ib = cs2 * delta_ab — the lattice isotropy condition
  // behind the model's second-order accuracy.
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      Real sum = 0.0;
      for (int i = 0; i < kQ; ++i) {
        const Vec3 ci = c(i);
        sum += w[static_cast<Size>(i)] * ci[a] * ci[b];
      }
      EXPECT_NEAR(sum, a == b ? cs2 : 0.0, 1e-15) << "a=" << a << " b=" << b;
    }
  }
}

TEST(D3Q19, FourthMomentIsotropy) {
  // sum_i w_i c_ia c_ib c_ic c_id = cs2^2 (d_ab d_cd + d_ac d_bd + d_ad d_bc)
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int cc = 0; cc < 3; ++cc) {
        for (int d = 0; d < 3; ++d) {
          Real sum = 0.0;
          for (int i = 0; i < kQ; ++i) {
            const Vec3 ci = c(i);
            sum += w[static_cast<Size>(i)] * ci[a] * ci[b] * ci[cc] * ci[d];
          }
          const Real kron = ((a == b && cc == d) ? 1.0 : 0.0) +
                            ((a == cc && b == d) ? 1.0 : 0.0) +
                            ((a == d && b == cc) ? 1.0 : 0.0);
          EXPECT_NEAR(sum, cs2 * cs2 * kron, 1e-15);
        }
      }
    }
  }
}

TEST(D3Q19, EquilibriumConservesMass) {
  const Vec3 u{0.05, -0.02, 0.01};
  const Real rho = 1.1;
  Real sum = 0.0;
  for (int i = 0; i < kQ; ++i) sum += equilibrium(i, rho, u);
  EXPECT_NEAR(sum, rho, 1e-14);
}

TEST(D3Q19, EquilibriumConservesMomentum) {
  const Vec3 u{0.05, -0.02, 0.01};
  const Real rho = 1.1;
  Vec3 mom{};
  for (int i = 0; i < kQ; ++i) {
    mom += equilibrium(i, rho, u) * c(i);
  }
  EXPECT_NEAR(mom.x, rho * u.x, 1e-14);
  EXPECT_NEAR(mom.y, rho * u.y, 1e-14);
  EXPECT_NEAR(mom.z, rho * u.z, 1e-14);
}

TEST(D3Q19, EquilibriumAtRestIsWeights) {
  for (int i = 0; i < kQ; ++i) {
    EXPECT_DOUBLE_EQ(equilibrium(i, 1.0, {}), w[static_cast<Size>(i)]);
  }
}

TEST(D3Q19, GuoForcingZerothMomentVanishes) {
  // sum_i F_i = 0: the forcing adds momentum, not mass.
  const Vec3 u{0.03, 0.01, -0.02};
  const Vec3 force{1e-3, -2e-3, 5e-4};
  const Real tau = 0.8;
  Real sum = 0.0;
  for (int i = 0; i < kQ; ++i) sum += guo_forcing(i, tau, u, force);
  EXPECT_NEAR(sum, 0.0, 1e-16);
}

TEST(D3Q19, GuoForcingFirstMomentIsScaledForce) {
  // sum_i c_i F_i = (1 - 1/(2 tau)) F.
  const Vec3 u{0.03, 0.01, -0.02};
  const Vec3 force{1e-3, -2e-3, 5e-4};
  const Real tau = 0.8;
  Vec3 mom{};
  for (int i = 0; i < kQ; ++i) mom += guo_forcing(i, tau, u, force) * c(i);
  const Real scale = 1.0 - 0.5 / tau;
  EXPECT_NEAR(mom.x, scale * force.x, 1e-16);
  EXPECT_NEAR(mom.y, scale * force.y, 1e-16);
  EXPECT_NEAR(mom.z, scale * force.z, 1e-16);
}

TEST(D3Q19, DirectionLabels) {
  EXPECT_EQ(direction_label(0), "( 0, 0, 0)");
  EXPECT_EQ(direction_label(1), "(+1, 0, 0)");
  EXPECT_EQ(direction_label(2), "(-1, 0, 0)");
}

}  // namespace
}  // namespace lbmib
