#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "lbm/collision.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/macroscopic.hpp"
#include "lbm/mrt.hpp"
#include "lbm/streaming.hpp"

namespace lbmib {
namespace {

void randomize(FluidGrid& grid, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (Size node = 0; node < grid.num_nodes(); ++node) {
    for (int dir = 0; dir < kQ; ++dir) {
      grid.df(dir, node) =
          d3q19::w[static_cast<Size>(dir)] * (1.0 + 0.1 * rng.next_double());
    }
  }
}

TEST(MrtOperator, MomentRowsAreOrthogonal) {
  const MrtOperator op(MrtRelaxation::from_tau(0.8));
  for (int r = 0; r < kQ; ++r) {
    for (int s = r + 1; s < kQ; ++s) {
      Real dot = 0.0;
      for (int i = 0; i < kQ; ++i) dot += op.m(r, i) * op.m(s, i);
      EXPECT_NEAR(dot, 0.0, 1e-10) << "rows " << r << ", " << s;
    }
  }
}

TEST(MrtOperator, InverseIsExact) {
  const MrtOperator op(MrtRelaxation::from_tau(0.8));
  for (int i = 0; i < kQ; ++i) {
    for (int j = 0; j < kQ; ++j) {
      Real sum = 0.0;
      for (int r = 0; r < kQ; ++r) sum += op.m_inv(i, r) * op.m(r, j);
      EXPECT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(MrtOperator, RejectsUnstableRates) {
  MrtRelaxation r = MrtRelaxation::from_tau(0.8);
  r.s_e = 2.0;
  EXPECT_THROW(MrtOperator{r}, Error);
  r = MrtRelaxation::from_tau(0.8);
  r.s_q = 0.0;
  EXPECT_THROW(MrtOperator{r}, Error);
  EXPECT_THROW(MrtOperator{MrtRelaxation::from_tau(0.49)}, Error);
}

TEST(Mrt, ConservesMassAndMomentumWithoutForce) {
  FluidGrid grid(6, 6, 6);
  randomize(grid, 1);
  const Real mass = grid.total_mass();
  const Vec3 p = grid.total_momentum();
  const MrtOperator op(MrtRelaxation::from_tau(0.8));
  mrt_collide_range(grid, op, 0, grid.num_nodes());
  EXPECT_NEAR(grid.total_mass(), mass, 1e-10);
  const Vec3 q = grid.total_momentum();
  EXPECT_NEAR(q.x, p.x, 1e-11);
  EXPECT_NEAR(q.y, p.y, 1e-11);
  EXPECT_NEAR(q.z, p.z, 1e-11);
}

TEST(Mrt, ForceAddsExactlyOneFPerNode) {
  // Like BGK with Guo forcing, each node's momentum must grow by exactly
  // F per step regardless of the relaxation rates.
  FluidGrid grid(4, 4, 4);
  const Vec3 force{1e-3, -2e-3, 5e-4};
  grid.reset_forces(force);
  const MrtOperator op(MrtRelaxation::from_tau(0.9));
  mrt_collide_range(grid, op, 0, grid.num_nodes());
  const Vec3 p = grid.total_momentum();
  EXPECT_NEAR(p.x, 64 * force.x, 1e-12);
  EXPECT_NEAR(p.y, 64 * force.y, 1e-12);
  EXPECT_NEAR(p.z, 64 * force.z, 1e-12);
}

TEST(Mrt, EquilibriumIsFixedPoint) {
  const Vec3 u0{0.03, -0.02, 0.01};
  FluidGrid grid(4, 4, 4, 1.1, u0);
  const MrtOperator op(MrtRelaxation::from_tau(0.7));
  mrt_collide_range(grid, op, 0, grid.num_nodes());
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int dir = 0; dir < kQ; ++dir) {
      EXPECT_NEAR(grid.df(dir, n), d3q19::equilibrium(dir, 1.1, u0),
                  1e-13);
    }
  }
}

TEST(Mrt, UniformRatesReduceToBgk) {
  // With every rate equal to 1/tau, MRT must reproduce the BGK collision
  // (including Guo forcing) to round-off.
  FluidGrid a(6, 6, 6), b(6, 6, 6);
  randomize(a, 7);
  randomize(b, 7);
  const Vec3 force{2e-4, -1e-4, 3e-4};
  a.reset_forces(force);
  b.reset_forces(force);
  const Real tau = 0.8;
  collide_range(a, tau, 0, a.num_nodes());
  const MrtOperator op(MrtRelaxation::uniform(tau));
  mrt_collide_range(b, op, 0, b.num_nodes());
  for (Size n = 0; n < a.num_nodes(); ++n) {
    for (int dir = 0; dir < kQ; ++dir) {
      EXPECT_NEAR(a.df(dir, n), b.df(dir, n), 1e-13)
          << "node " << n << " dir " << dir;
    }
  }
}

TEST(Mrt, SkipsSolidNodes) {
  FluidGrid grid(4, 4, 4);
  grid.set_solid(5, true);
  grid.df(3, 5) = 99.0;
  const MrtOperator op(MrtRelaxation::from_tau(0.8));
  mrt_collide_range(grid, op, 0, grid.num_nodes());
  EXPECT_EQ(grid.df(3, 5), 99.0);
}

TEST(Mrt, PoiseuilleViscosityMatchesSNu) {
  // The split-rate MRT must still produce nu = cs^2 (1/s_nu - 1/2): drive
  // a planar channel and compare against the analytic parabola.
  constexpr Index kNx = 4, kNy = 12, kNz = 4;
  constexpr Real kTau = 0.8, kForce = 1e-6;
  FluidGrid grid(kNx, kNy, kNz);
  for (Index x = 0; x < kNx; ++x) {
    for (Index z = 0; z < kNz; ++z) {
      grid.set_solid(grid.index(x, 0, z), true);
      grid.set_solid(grid.index(x, kNy - 1, z), true);
    }
  }
  const MrtOperator op(MrtRelaxation::from_tau(kTau));  // split rates
  for (int s = 0; s < 1200; ++s) {
    grid.reset_forces({kForce, 0.0, 0.0});
    mrt_collide_range(grid, op, 0, grid.num_nodes());
    stream_x_slab(grid, 0, kNx);
    update_velocity_range(grid, 0, grid.num_nodes());
    copy_distributions_range(grid, 0, grid.num_nodes());
  }
  const Real nu = (kTau - 0.5) / 3.0;
  const Real y0 = 0.5, y1 = static_cast<Real>(kNy) - 1.5;
  for (Index y = 2; y < kNy - 2; ++y) {
    const Real expected = kForce / (2.0 * nu) *
                          (static_cast<Real>(y) - y0) *
                          (y1 - static_cast<Real>(y));
    EXPECT_NEAR(grid.ux(grid.index(2, y, 2)), expected, 0.04 * expected)
        << "y=" << y;
  }
}

TEST(Mrt, DefaultRatesMatchDHumieres) {
  const MrtRelaxation r = MrtRelaxation::from_tau(0.8);
  EXPECT_DOUBLE_EQ(r.s_nu, 1.0 / 0.8);
  EXPECT_DOUBLE_EQ(r.s_e, 1.19);
  EXPECT_DOUBLE_EQ(r.s_eps, 1.4);
  EXPECT_DOUBLE_EQ(r.s_q, 1.2);
  EXPECT_DOUBLE_EQ(r.s_m, 1.98);
}

}  // namespace
}  // namespace lbmib
