#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/cube_solver.hpp"
#include "core/dataflow_solver.hpp"
#include "core/openmp_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"
#include "lbm/boundary.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/observables.hpp"

namespace lbmib {
namespace {

SimulationParams inlet_params() {
  SimulationParams p;
  p.nx = 24;
  p.ny = 12;
  p.nz = 12;
  p.boundary = BoundaryType::kInletOutlet;
  p.inlet_velocity = {0.04, 0.0, 0.0};
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  return p;
}

TEST(InletOutlet, ParamsValidation) {
  SimulationParams p = inlet_params();
  EXPECT_NO_THROW(p.validate());
  p.inlet_velocity = {0.5, 0.0, 0.0};  // supersonic-ish
  EXPECT_THROW(p.validate(), Error);
  p = inlet_params();
  p.nx = 2;
  p.cube_size = 1;
  EXPECT_THROW(p.validate(), Error);
}

TEST(InletOutlet, MaskMarksChannelWalls) {
  FluidGrid grid(8, 6, 6);
  apply_boundary_mask(grid, BoundaryType::kInletOutlet);
  EXPECT_GT(count_solid_nodes(grid), 0u);
  EXPECT_FALSE(grid.solid(grid.index(0, 3, 3)));  // inlet face is fluid
}

TEST(InletOutlet, InletImposesVelocityAtLocalDensity) {
  FluidGrid grid(8, 6, 6);
  // Pretend streaming already filled df_new with a pressurized state.
  const Vec3 u_bulk{0.01, 0.0, 0.0};
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int dir = 0; dir < kQ; ++dir) {
      grid.df_new(dir, n) = d3q19::equilibrium(dir, 1.2, u_bulk);
    }
  }
  const Vec3 u_in{0.03, 0.0, 0.0};
  apply_inlet_outlet(grid, u_in, 0, 8);
  // Inlet carries the imposed velocity at the *local* (x=1) density.
  const Size node = grid.index(0, 3, 3);
  for (int dir = 0; dir < kQ; ++dir) {
    EXPECT_NEAR(grid.df_new(dir, node),
                d3q19::equilibrium(dir, 1.2, u_in), 1e-13);
  }
}

TEST(InletOutlet, OutletAnchorsDensityAndExtrapolatesVelocity) {
  FluidGrid grid(8, 6, 6);
  const Vec3 u_up{0.02, 0.005, 0.0};
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int dir = 0; dir < kQ; ++dir) {
      grid.df_new(dir, n) = d3q19::equilibrium(dir, 1.3, u_up);
    }
  }
  apply_inlet_outlet(grid, {0.03, 0.0, 0.0}, 0, 8);
  const Size outlet = grid.index(7, 2, 3);
  // rho anchored at 1, velocity taken from upstream.
  for (int dir = 0; dir < kQ; ++dir) {
    EXPECT_NEAR(grid.df_new(dir, outlet),
                d3q19::equilibrium(dir, 1.0, u_up), 1e-13);
  }
}

TEST(InletOutlet, ApplyRespectsSlabRange) {
  FluidGrid grid(8, 6, 6);
  grid.df_new(0, grid.index(0, 3, 3)) = -1.0;
  apply_inlet_outlet(grid, {0.03, 0.0, 0.0}, 2, 6);  // excludes x=0, x=7
  EXPECT_EQ(grid.df_new(0, grid.index(0, 3, 3)), -1.0);
}

TEST(InletOutlet, FlowDevelopsDownstream) {
  // Starting from rest, the imposed inlet velocity must propagate through
  // the whole channel.
  SequentialSolver solver(inlet_params());
  solver.run(200);
  const FluidGrid& grid = solver.fluid();
  // Centerline streamwise velocity positive everywhere, and mass flux in
  // the channel core near the inlet value's order of magnitude.
  for (Index x = 1; x < grid.nx() - 1; x += 4) {
    EXPECT_GT(grid.ux(grid.index(x, 6, 6)), 0.01) << "x=" << x;
  }
  EXPECT_LT(max_velocity_magnitude(grid), 0.3);  // stable
}

TEST(InletOutlet, SteadyStateMassFluxBalances) {
  // Once developed, the mass flux (rho u) through every cross-section is
  // equal: what the inlet pushes in, the pressure outlet lets out.
  SequentialSolver solver(inlet_params());
  solver.run(500);
  const FluidGrid& grid = solver.fluid();
  auto face_mass_flux = [&](Index x) {
    Real flux = 0.0;
    for (Index y = 0; y < grid.ny(); ++y) {
      for (Index z = 0; z < grid.nz(); ++z) {
        const Size n = grid.index(x, y, z);
        if (!grid.solid(n)) flux += grid.rho(n) * grid.ux(n);
      }
    }
    return flux;
  };
  const Real inflow = face_mass_flux(1);
  const Real midflow = face_mass_flux(grid.nx() / 2);
  const Real outflow = face_mass_flux(grid.nx() - 2);
  EXPECT_NEAR(midflow, inflow, 0.05 * inflow);
  EXPECT_NEAR(outflow, inflow, 0.05 * inflow);
}

TEST(InletOutlet, TotalMassStaysBounded) {
  // The velocity-inlet/pressure-outlet pair must not pressurize the
  // channel indefinitely.
  SequentialSolver solver(inlet_params());
  solver.run(300);
  const Real mass_early = solver.fluid().total_mass();
  solver.run(300);
  const Real mass_late = solver.fluid().total_mass();
  EXPECT_NEAR(mass_late, mass_early, 0.01 * mass_early);
}

TEST(InletOutlet, AllParallelSolversMatchSequential) {
  SimulationParams p = inlet_params();
  // Add a small immersed sheet to exercise the full coupling too.
  p.num_fibers = 5;
  p.nodes_per_fiber = 5;
  p.sheet_width = 4.0;
  p.sheet_height = 4.0;
  p.sheet_origin = {10.0, 4.0, 4.0};
  p.pin_mode = PinMode::kLeadingEdge;

  SequentialSolver seq(p);
  seq.run(10);

  p.num_threads = 4;
  OpenMPSolver omp(p);
  omp.run(10);
  EXPECT_LT(compare_solvers(seq, omp).max_any(), 1e-11) << "openmp";

  CubeSolver cube(p);
  cube.run(10);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11) << "cube";

  DataflowCubeSolver flow(p);
  flow.run(10);
  EXPECT_LT(compare_solvers(seq, flow).max_any(), 1e-11) << "dataflow";
}

TEST(InletOutlet, CubeSizeOneMatchesSequential) {
  // Exercises the k = 1 outlet path (upstream column in the -x neighbour
  // cube).
  SimulationParams p = inlet_params();
  SequentialSolver seq(p);
  seq.run(6);
  p.cube_size = 1;
  p.num_threads = 2;
  CubeSolver cube(p);
  cube.run(6);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
}

TEST(InletOutlet, ObliqueInletVelocity) {
  SimulationParams p = inlet_params();
  p.inlet_velocity = {0.03, 0.01, 0.0};
  SequentialSolver seq(p);
  seq.run(6);
  p.num_threads = 3;
  CubeSolver cube(p);
  cube.run(6);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
}

}  // namespace
}  // namespace lbmib
