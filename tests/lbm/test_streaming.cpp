#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lbm/boundary.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/streaming.hpp"

namespace lbmib {
namespace {

void randomize(FluidGrid& grid, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (Size node = 0; node < grid.num_nodes(); ++node) {
    for (int dir = 0; dir < kQ; ++dir) {
      grid.df(dir, node) = rng.next_double(0.01, 1.0);
    }
  }
}

TEST(Streaming, MovesValuesToPeriodicNeighbours) {
  FluidGrid grid(4, 4, 4);
  randomize(grid, 1);
  stream_x_slab(grid, 0, 4);
  using namespace d3q19;
  for (Index x = 0; x < 4; ++x) {
    for (Index y = 0; y < 4; ++y) {
      for (Index z = 0; z < 4; ++z) {
        const Size src = grid.index(x, y, z);
        for (int dir = 0; dir < kQ; ++dir) {
          const Size dst = grid.periodic_index(
              x + cx[static_cast<Size>(dir)], y + cy[static_cast<Size>(dir)],
              z + cz[static_cast<Size>(dir)]);
          EXPECT_EQ(grid.df_new(dir, dst), grid.df(dir, src))
              << "dir " << dir << " from " << src;
        }
      }
    }
  }
}

TEST(Streaming, ConservesMassPeriodic) {
  FluidGrid grid(6, 4, 4);
  randomize(grid, 2);
  Real mass_before = 0.0;
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) mass_before += grid.df(d, n);
  }
  stream_x_slab(grid, 0, 6);
  Real mass_after = 0.0;
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) mass_after += grid.df_new(d, n);
  }
  EXPECT_NEAR(mass_after, mass_before, 1e-10);
}

TEST(Streaming, IsAPermutationPeriodic) {
  // Every df value must land in exactly one df_new slot: sort-free check
  // via sum and sum of squares.
  FluidGrid grid(4, 4, 4);
  randomize(grid, 3);
  Real sum = 0.0, sum2 = 0.0;
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      sum += grid.df(d, n);
      sum2 += grid.df(d, n) * grid.df(d, n);
    }
  }
  stream_x_slab(grid, 0, 4);
  Real nsum = 0.0, nsum2 = 0.0;
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      nsum += grid.df_new(d, n);
      nsum2 += grid.df_new(d, n) * grid.df_new(d, n);
    }
  }
  EXPECT_NEAR(nsum, sum, 1e-10);
  EXPECT_NEAR(nsum2, sum2, 1e-10);
}

TEST(Streaming, SlabDecompositionMatchesWholeGrid) {
  FluidGrid whole(6, 4, 4), parts(6, 4, 4);
  randomize(whole, 4);
  randomize(parts, 4);
  stream_x_slab(whole, 0, 6);
  stream_x_slab(parts, 0, 2);
  stream_x_slab(parts, 2, 5);
  stream_x_slab(parts, 5, 6);
  for (Size n = 0; n < whole.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      EXPECT_EQ(parts.df_new(d, n), whole.df_new(d, n));
    }
  }
}

TEST(Streaming, BounceBackReflectsAtWalls) {
  FluidGrid grid(4, 6, 6);
  apply_boundary_mask(grid, BoundaryType::kChannel);
  randomize(grid, 5);
  stream_x_slab(grid, 0, 4);
  using namespace d3q19;
  // A fluid node adjacent to the y=0 wall: anything pushed toward the wall
  // must come back in the opposite direction.
  const Index x = 2, y = 1, z = 3;
  const Size src = grid.index(x, y, z);
  for (int dir = 1; dir < kQ; ++dir) {
    if (cy[static_cast<Size>(dir)] == -1 && cx[static_cast<Size>(dir)] == 0 &&
        cz[static_cast<Size>(dir)] == 0) {
      EXPECT_EQ(grid.df_new(opposite(dir), src), grid.df(dir, src));
    }
  }
}

TEST(Streaming, BounceBackConservesMassInChannel) {
  FluidGrid grid(4, 6, 6);
  apply_boundary_mask(grid, BoundaryType::kChannel);
  // Randomize only fluid nodes; solid nodes hold no mass.
  SplitMix64 rng(6);
  Real mass_before = 0.0;
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      grid.df(d, n) = grid.solid(n) ? 0.0 : rng.next_double(0.01, 1.0);
      mass_before += grid.df(d, n);
    }
  }
  stream_x_slab(grid, 0, 4);
  Real mass_after = 0.0;
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) mass_after += grid.df_new(d, n);
  }
  EXPECT_NEAR(mass_after, mass_before, 1e-10);
}

TEST(Streaming, NothingLeaksIntoSolidNodes) {
  FluidGrid grid(4, 6, 6);
  apply_boundary_mask(grid, BoundaryType::kChannel);
  randomize(grid, 7);
  stream_x_slab(grid, 0, 4);
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    if (!grid.solid(n)) continue;
    for (int d = 0; d < kQ; ++d) {
      EXPECT_EQ(grid.df_new(d, n), 0.0) << "solid node " << n;
    }
  }
}

TEST(Streaming, CopyDistributionsRoundTrip) {
  FluidGrid grid(4, 4, 4);
  randomize(grid, 8);
  stream_x_slab(grid, 0, 4);
  copy_distributions_range(grid, 0, grid.num_nodes());
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      EXPECT_EQ(grid.df(d, n), grid.df_new(d, n));
    }
  }
}

TEST(Streaming, CopyRangeIsRestricted) {
  FluidGrid grid(4, 4, 4);
  randomize(grid, 9);
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) grid.df_new(d, n) = -1.0;
  }
  copy_distributions_range(grid, 0, 32);
  EXPECT_EQ(grid.df(0, 10), -1.0);
  EXPECT_NE(grid.df(0, 40), -1.0);
}

}  // namespace
}  // namespace lbmib
