#include <gtest/gtest.h>

#include "lbm/boundary.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

TEST(Boundary, PeriodicMarksNothing) {
  FluidGrid grid(4, 4, 4);
  apply_boundary_mask(grid, BoundaryType::kPeriodic);
  EXPECT_EQ(count_solid_nodes(grid), 0u);
}

TEST(Boundary, ChannelMarksYandZWalls) {
  FluidGrid grid(4, 6, 8);
  apply_boundary_mask(grid, BoundaryType::kChannel);
  for (Index x = 0; x < 4; ++x) {
    for (Index y = 0; y < 6; ++y) {
      for (Index z = 0; z < 8; ++z) {
        const bool wall = (y == 0 || y == 5 || z == 0 || z == 7);
        EXPECT_EQ(grid.solid(grid.index(x, y, z)), wall)
            << x << "," << y << "," << z;
      }
    }
  }
}

TEST(Boundary, ChannelSolidCountFormula) {
  FluidGrid grid(5, 6, 7);
  apply_boundary_mask(grid, BoundaryType::kChannel);
  // Walls: full y=0/y=ny-1 planes plus z=0/z=nz-1 planes minus the shared
  // edges. Per x-slice: ny*nz - (ny-2)*(nz-2) wall nodes.
  const Size per_slice = 6 * 7 - 4 * 5;
  EXPECT_EQ(count_solid_nodes(grid), 5 * per_slice);
}

TEST(Boundary, XRemainsOpenInChannel) {
  FluidGrid grid(4, 6, 6);
  apply_boundary_mask(grid, BoundaryType::kChannel);
  // Interior y/z at both x extremes must be fluid (flow direction open).
  EXPECT_FALSE(grid.solid(grid.index(0, 3, 3)));
  EXPECT_FALSE(grid.solid(grid.index(3, 3, 3)));
}

TEST(Boundary, GridConstructorAppliesChannelMask) {
  SimulationParams p = presets::tiny();
  p.boundary = BoundaryType::kChannel;
  FluidGrid grid(p);
  EXPECT_GT(count_solid_nodes(grid), 0u);
}

}  // namespace
}  // namespace lbmib
