#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lbm/collision.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

/// Fill the grid with a randomized but positive distribution state.
void randomize(FluidGrid& grid, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (Size node = 0; node < grid.num_nodes(); ++node) {
    for (int dir = 0; dir < kQ; ++dir) {
      grid.df(dir, node) =
          d3q19::w[static_cast<Size>(dir)] * (1.0 + 0.1 * rng.next_double());
    }
  }
}

TEST(Collision, ConservesMassWithoutForce) {
  FluidGrid grid(6, 6, 6);
  randomize(grid, 1);
  const Real mass_before = grid.total_mass();
  collide_range(grid, 0.8, 0, grid.num_nodes());
  EXPECT_NEAR(grid.total_mass(), mass_before, 1e-11);
}

TEST(Collision, ConservesMomentumWithoutForce) {
  FluidGrid grid(6, 6, 6);
  randomize(grid, 2);
  const Vec3 p_before = grid.total_momentum();
  collide_range(grid, 0.8, 0, grid.num_nodes());
  const Vec3 p_after = grid.total_momentum();
  EXPECT_NEAR(p_after.x, p_before.x, 1e-12);
  EXPECT_NEAR(p_after.y, p_before.y, 1e-12);
  EXPECT_NEAR(p_after.z, p_before.z, 1e-12);
}

TEST(Collision, ConservesMassWithForce) {
  FluidGrid grid(6, 6, 6);
  randomize(grid, 3);
  grid.reset_forces({1e-4, -2e-4, 3e-4});
  const Real mass_before = grid.total_mass();
  collide_range(grid, 0.8, 0, grid.num_nodes());
  EXPECT_NEAR(grid.total_mass(), mass_before, 1e-11);
}

TEST(Collision, ForceAddsMomentum) {
  // After collision with Guo forcing, total momentum grows by
  // (1 - 1/(2tau)) F per node from the source term; the remaining F/(2tau)
  // arrives via the equilibrium shift. Together one full F per node per
  // step — verified through two half-contributions.
  FluidGrid grid(4, 4, 4);  // uniform equilibrium at rest
  const Vec3 force{1e-3, 0.0, 0.0};
  grid.reset_forces(force);
  const Real tau = 0.8;
  collide_range(grid, tau, 0, grid.num_nodes());
  const Vec3 p_after = grid.total_momentum();
  // At rest, the pre-collision momentum is 0 and u = F/(2 rho). The
  // distribution relaxes toward momentum rho*u = F/2, contributing
  // (1/tau)*(F/2); the Guo source adds (1-1/(2tau))*F.
  const Real expected_per_node =
      (1.0 / tau) * 0.5 * force.x + (1.0 - 0.5 / tau) * force.x;
  EXPECT_NEAR(p_after.x, 64 * expected_per_node, 1e-12);
  EXPECT_NEAR(p_after.y, 0.0, 1e-14);
}

TEST(Collision, EquilibriumIsFixedPointWithoutForce) {
  const Vec3 u0{0.04, -0.02, 0.01};
  FluidGrid grid(4, 4, 4, 1.1, u0);
  FluidGrid reference(4, 4, 4, 1.1, u0);
  collide_range(grid, 0.7, 0, grid.num_nodes());
  for (Size node = 0; node < grid.num_nodes(); ++node) {
    for (int dir = 0; dir < kQ; ++dir) {
      EXPECT_NEAR(grid.df(dir, node), reference.df(dir, node), 1e-14);
    }
  }
}

TEST(Collision, RelaxesTowardEquilibrium) {
  // A perturbed state must be strictly closer to equilibrium afterwards.
  FluidGrid grid(4, 4, 4);
  const Size node = grid.index(2, 2, 2);
  grid.df(1, node) += 0.01;
  grid.df(2, node) -= 0.01;

  auto distance_to_eq = [&](Size n) {
    Real rho = 0.0;
    Vec3 mom{};
    for (int i = 0; i < kQ; ++i) {
      rho += grid.df(i, n);
      mom += grid.df(i, n) * d3q19::c(i);
    }
    const Vec3 u = mom / rho;
    Real dist = 0.0;
    for (int i = 0; i < kQ; ++i) {
      const Real d = grid.df(i, n) - d3q19::equilibrium(i, rho, u);
      dist += d * d;
    }
    return dist;
  };

  const Real before = distance_to_eq(node);
  collide_range(grid, 0.9, 0, grid.num_nodes());
  const Real after = distance_to_eq(node);
  EXPECT_LT(after, before);
  EXPECT_GT(before, 0.0);
}

TEST(Collision, SkipsSolidNodes) {
  FluidGrid grid(4, 4, 4);
  const Size node = grid.index(1, 1, 1);
  grid.set_solid(node, true);
  grid.df(5, node) = 123.0;  // garbage that collision must not touch
  collide_range(grid, 0.8, 0, grid.num_nodes());
  EXPECT_EQ(grid.df(5, node), 123.0);
}

TEST(Collision, RangeRestrictsWork) {
  FluidGrid grid(4, 4, 4);
  const Size node_in = 3, node_out = 40;
  grid.df(1, node_in) += 0.01;
  grid.df(1, node_out) += 0.01;
  const Real before_out = grid.df(1, node_out);
  collide_range(grid, 0.8, 0, 32);  // only first half
  EXPECT_EQ(grid.df(1, node_out), before_out);
  EXPECT_NE(grid.df(1, node_in), 0.01 + d3q19::w[1]);
}

TEST(Collision, CollideNodeMatchesCollideRange) {
  FluidGrid a(2, 2, 2), b(2, 2, 2);
  SplitMix64 rng(7);
  for (Size node = 0; node < a.num_nodes(); ++node) {
    for (int dir = 0; dir < kQ; ++dir) {
      const Real v =
          d3q19::w[static_cast<Size>(dir)] * (1.0 + 0.2 * rng.next_double());
      a.df(dir, node) = v;
      b.df(dir, node) = v;
    }
  }
  const Vec3 force{1e-4, 2e-4, -1e-4};
  a.reset_forces(force);
  b.reset_forces(force);

  collide_range(a, 0.8, 0, a.num_nodes());
  for (Size node = 0; node < b.num_nodes(); ++node) {
    NodeDistributions nd;
    for (int dir = 0; dir < kQ; ++dir) nd.g[dir] = &b.df(dir, node);
    collide_node(nd, 0.8, force);
  }
  for (Size node = 0; node < a.num_nodes(); ++node) {
    for (int dir = 0; dir < kQ; ++dir) {
      EXPECT_DOUBLE_EQ(a.df(dir, node), b.df(dir, node));
    }
  }
}

}  // namespace
}  // namespace lbmib
