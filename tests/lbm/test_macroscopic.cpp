#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/macroscopic.hpp"

namespace lbmib {
namespace {

TEST(Macroscopic, RecoversUniformEquilibriumState) {
  const Vec3 u0{0.03, -0.01, 0.02};
  FluidGrid grid(4, 4, 4, 1.2, u0);
  // Put the equilibrium state into df_new (update reads the streamed
  // buffer).
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) grid.df_new(d, n) = grid.df(d, n);
    grid.rho(n) = 0.0;
    grid.set_velocity(n, {});
  }
  update_velocity_range(grid, 0, grid.num_nodes());
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    EXPECT_NEAR(grid.rho(n), 1.2, 1e-13);
    EXPECT_NEAR(grid.ux(n), u0.x, 1e-14);
    EXPECT_NEAR(grid.uy(n), u0.y, 1e-14);
    EXPECT_NEAR(grid.uz(n), u0.z, 1e-14);
  }
}

TEST(Macroscopic, HalfForceShiftIncluded) {
  FluidGrid grid(2, 2, 2, 1.0, {});
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) grid.df_new(d, n) = grid.df(d, n);
  }
  const Vec3 force{2e-3, 0.0, -4e-3};
  grid.reset_forces(force);
  update_velocity_range(grid, 0, grid.num_nodes());
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    EXPECT_NEAR(grid.ux(n), 0.5 * force.x, 1e-15);
    EXPECT_NEAR(grid.uy(n), 0.0, 1e-15);
    EXPECT_NEAR(grid.uz(n), 0.5 * force.z, 1e-15);
  }
}

TEST(Macroscopic, MatchesHandComputedMoments) {
  FluidGrid grid(2, 2, 2);
  const Size node = 3;
  SplitMix64 rng(11);
  Real rho = 0.0;
  Vec3 mom{};
  for (int d = 0; d < kQ; ++d) {
    const Real v = rng.next_double(0.01, 0.1);
    grid.df_new(d, node) = v;
    rho += v;
    mom += v * d3q19::c(d);
  }
  update_velocity_range(grid, 0, grid.num_nodes());
  EXPECT_NEAR(grid.rho(node), rho, 1e-15);
  EXPECT_NEAR(grid.ux(node), mom.x / rho, 1e-15);
  EXPECT_NEAR(grid.uy(node), mom.y / rho, 1e-15);
  EXPECT_NEAR(grid.uz(node), mom.z / rho, 1e-15);
}

TEST(Macroscopic, SolidNodesGetZeroVelocity) {
  FluidGrid grid(2, 2, 2, 1.0, {0.1, 0.1, 0.1});
  grid.set_solid(5, true);
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) grid.df_new(d, n) = grid.df(d, n);
  }
  update_velocity_range(grid, 0, grid.num_nodes());
  EXPECT_EQ(grid.velocity(5), Vec3{});
  EXPECT_NE(grid.velocity(4), Vec3{});
}

TEST(Macroscopic, RangeRestrictsWork) {
  FluidGrid grid(4, 4, 4, 1.0, {0.05, 0.0, 0.0});
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) grid.df_new(d, n) = grid.df(d, n);
    grid.set_velocity(n, {});
  }
  update_velocity_range(grid, 0, 32);
  EXPECT_NEAR(grid.ux(10), 0.05, 1e-14);
  EXPECT_EQ(grid.ux(50), 0.0);
}

}  // namespace
}  // namespace lbmib
