#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "lbm/collision.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/macroscopic.hpp"
#include "lbm/observables.hpp"
#include "lbm/streaming.hpp"

namespace lbmib {
namespace {

TEST(Observables, PressureIsCs2Rho) {
  FluidGrid grid(4, 4, 4, 1.2);
  EXPECT_DOUBLE_EQ(pressure(grid, 7), 1.2 / 3.0);
}

TEST(Observables, SymTensorNormAndTrace) {
  SymTensor3 t{1.0, 2.0, 3.0, 0.5, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(t.trace(), 6.0);
  EXPECT_DOUBLE_EQ(t.norm(), std::sqrt(1.0 + 4.0 + 9.0 + 2 * 0.25));
}

TEST(Observables, EquilibriumStateHasZeroNonEqMoment) {
  FluidGrid grid(4, 4, 4, 1.1, {0.03, -0.01, 0.02});
  const SymTensor3 pi = nonequilibrium_moment(grid, grid.index(2, 2, 2));
  EXPECT_NEAR(pi.norm(), 0.0, 1e-14);
}

TEST(Observables, EquilibriumStateHasZeroStrainAndStress) {
  FluidGrid grid(4, 4, 4, 1.0, {0.02, 0.0, 0.0});
  const Size node = grid.index(1, 1, 1);
  EXPECT_NEAR(strain_rate(grid, node, 0.8).norm(), 0.0, 1e-14);
  EXPECT_NEAR(shear_stress(grid, node, 0.8).norm(), 0.0, 1e-14);
}

TEST(Observables, UniformFlowHasZeroVorticity) {
  FluidGrid grid(6, 6, 6, 1.0, {0.05, 0.02, -0.01});
  const Vec3 w = vorticity(grid, 3, 3, 3);
  EXPECT_NEAR(norm(w), 0.0, 1e-15);
}

TEST(Observables, ShearFlowVorticity) {
  // u_x = a * y -> omega_z = -a.
  FluidGrid grid(8, 8, 8);
  const Real a = 0.01;
  for (Index x = 0; x < 8; ++x) {
    for (Index y = 0; y < 8; ++y) {
      for (Index z = 0; z < 8; ++z) {
        grid.set_velocity(grid.index(x, y, z),
                          {a * static_cast<Real>(y), 0.0, 0.0});
      }
    }
  }
  // Away from the periodic seam the central difference is exact for a
  // linear profile.
  const Vec3 w = vorticity(grid, 4, 4, 4);
  EXPECT_NEAR(w.z, -a, 1e-14);
  EXPECT_NEAR(w.x, 0.0, 1e-14);
  EXPECT_NEAR(w.y, 0.0, 1e-14);
}

TEST(Observables, TaylorGreenVorticityMatchesAnalytic) {
  constexpr Index kN = 32;
  constexpr Real kU0 = 0.02;
  FluidGrid grid(kN, kN, kN);
  const Real k = 2.0 * std::numbers::pi_v<Real> / static_cast<Real>(kN);
  for (Index x = 0; x < kN; ++x) {
    for (Index y = 0; y < kN; ++y) {
      for (Index z = 0; z < kN; ++z) {
        grid.set_velocity(grid.index(x, y, z),
                          {kU0 * std::sin(k * x) * std::cos(k * y),
                           -kU0 * std::cos(k * x) * std::sin(k * y), 0.0});
      }
    }
  }
  // omega_z = 2 U k sin(kx) sin(ky); central differences approximate k
  // with sin(k)/1 -> allow the O(k^2) discretization error.
  for (Index x : {3, 9, 17}) {
    for (Index y : {5, 12, 25}) {
      const Vec3 w = vorticity(grid, x, y, 4);
      const Real expected =
          2.0 * kU0 * k * std::sin(k * x) * std::sin(k * y);
      EXPECT_NEAR(w.z, expected, 0.01 * 2.0 * kU0 * k);
    }
  }
}

TEST(Observables, StrainRateFromMomentsMatchesVelocityGradient) {
  // Drive a Poiseuille-style shear flow and compare the moment-based
  // strain rate S_xy against the finite-difference du_x/dy / 2.
  constexpr Index kNx = 4, kNy = 12, kNz = 4;
  constexpr Real kTau = 0.8, kForce = 1e-6;
  FluidGrid grid(kNx, kNy, kNz);
  for (Index x = 0; x < kNx; ++x) {
    for (Index z = 0; z < kNz; ++z) {
      grid.set_solid(grid.index(x, 0, z), true);
      grid.set_solid(grid.index(x, kNy - 1, z), true);
    }
  }
  for (int s = 0; s < 800; ++s) {
    grid.reset_forces({kForce, 0.0, 0.0});
    collide_range(grid, kTau, 0, grid.num_nodes());
    stream_x_slab(grid, 0, kNx);
    update_velocity_range(grid, 0, grid.num_nodes());
    copy_distributions_range(grid, 0, grid.num_nodes());
  }
  for (Index y = 3; y <= 8; ++y) {
    const Size node = grid.index(2, y, 2);
    const Real dudy =
        0.5 * (grid.ux(grid.index(2, y + 1, 2)) -
               grid.ux(grid.index(2, y - 1, 2)));
    const SymTensor3 s = strain_rate(grid, node, kTau);
    EXPECT_NEAR(s.xy, 0.5 * dudy, 0.05 * std::abs(0.5 * dudy) + 1e-10)
        << "y=" << y;
  }
}

TEST(Observables, ShearStressIsTwoRhoNuStrain) {
  FluidGrid grid(4, 4, 4, 1.3);
  const Size node = grid.index(2, 2, 2);
  grid.df(1, node) += 0.01;  // any non-equilibrium perturbation
  grid.df(7, node) += 0.005;
  const Real tau = 0.9;
  const SymTensor3 s = strain_rate(grid, node, tau);
  const SymTensor3 sigma = shear_stress(grid, node, tau);
  const Real nu = (tau - 0.5) / 3.0;
  EXPECT_NEAR(sigma.xy, 2.0 * grid.rho(node) * nu * s.xy, 1e-15);
  EXPECT_NEAR(sigma.xx, 2.0 * grid.rho(node) * nu * s.xx, 1e-15);
}

TEST(Observables, KineticEnergyOfUniformFlow) {
  FluidGrid grid(4, 4, 4, 2.0, {0.1, 0.0, 0.0});
  EXPECT_NEAR(kinetic_energy(grid), 0.5 * 2.0 * 0.01 * 64, 1e-12);
}

TEST(Observables, KineticEnergySkipsSolids) {
  FluidGrid grid(4, 4, 4, 1.0, {0.1, 0.0, 0.0});
  const Real full = kinetic_energy(grid);
  grid.set_solid(0, true);
  EXPECT_LT(kinetic_energy(grid), full);
}

TEST(Observables, EnstrophyZeroForUniformFlow) {
  FluidGrid grid(6, 6, 6, 1.0, {0.05, 0.0, 0.0});
  EXPECT_NEAR(enstrophy(grid), 0.0, 1e-20);
}

TEST(Observables, MaxVelocityMagnitude) {
  FluidGrid grid(4, 4, 4);
  grid.set_velocity(grid.index(1, 2, 3), {0.3, 0.4, 0.0});
  EXPECT_DOUBLE_EQ(max_velocity_magnitude(grid), 0.5);
}

}  // namespace
}  // namespace lbmib
