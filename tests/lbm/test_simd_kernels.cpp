// Lane-block kernel equivalence: fused_block_bgk / fused_block_mrt must
// reproduce the scalar per-node kernels (collide_node_array,
// MrtOperator::collide_node) for any run length (full blocks, ragged
// tails, single nodes) and in place (dst == src).
//
// Tolerance note: the lane kernels perform the scalar operation sequence
// per lane, but they live in a different translation unit, and under the
// compiler's default fp-contraction it may fuse different multiply-adds
// in each — worth up to a few ULPs on adversarial random inputs. These
// tests therefore assert 4-ULP agreement (EXPECT_DOUBLE_EQ). The
// *solver-level* vectorized-vs-scalar legs in test_fused_equivalence.cpp
// stay strictly bit-exact on this toolchain for real flow states and are
// the canonical fused-path contract; this test localizes any arithmetic
// (as opposed to streaming/boundary) regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "lbm/collision.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fused.hpp"
#include "lbm/mrt.hpp"
#include "lbm/simd.hpp"
#include "lbm/simd_kernels.hpp"

namespace lbmib {
namespace {

constexpr Real kTau = 0.7;

/// One randomized run of `n` nodes: 19 population planes plus force
/// components, laid out like a FluidGrid z-run (direction-major planes).
struct LaneRun {
  explicit LaneRun(Size n, std::uint64_t seed) : n(n) {
    SplitMix64 rng(seed);
    for (int dir = 0; dir < kQ; ++dir) {
      planes[dir].reset(n);
      // Near-equilibrium populations: positive, O(weight) magnitude.
      for (Size i = 0; i < n; ++i) {
        planes[dir][i] = d3q19::w[static_cast<Size>(dir)] * rng.next_double(0.8, 1.2);
      }
    }
    fx.reset(n);
    fy.reset(n);
    fz.reset(n);
    for (Size i = 0; i < n; ++i) {
      fx[i] = rng.next_double(-1e-4, 1e-4);
      fy[i] = rng.next_double(-1e-4, 1e-4);
      fz[i] = rng.next_double(-1e-4, 1e-4);
    }
  }

  /// Scalar reference: gather node i, collide with the per-node kernel.
  std::vector<std::array<Real, kQ>> scalar_bgk() const {
    std::vector<std::array<Real, kQ>> out(n);
    for (Size i = 0; i < n; ++i) {
      for (int dir = 0; dir < kQ; ++dir) out[i][dir] = planes[dir][i];
      collide_node_array(out[i].data(), kTau, {fx[i], fy[i], fz[i]});
    }
    return out;
  }

  std::vector<std::array<Real, kQ>> scalar_mrt(
      const MrtOperator& op) const {
    std::vector<std::array<Real, kQ>> out(n);
    for (Size i = 0; i < n; ++i) {
      for (int dir = 0; dir < kQ; ++dir) out[i][dir] = planes[dir][i];
      op.collide_node(out[i].data(), {fx[i], fy[i], fz[i]});
    }
    return out;
  }

  Size n;
  AlignedBuffer<Real> planes[kQ];
  AlignedBuffer<Real> fx, fy, fz;
};

/// Run lengths that cover: sub-block, exact kLaneBlock multiples, ragged
/// tails of every flavour, and a single node.
std::vector<Size> interesting_lengths() {
  return {1,
          3,
          simd::kLaneBlock - 1,
          simd::kLaneBlock,
          simd::kLaneBlock + 1,
          2 * simd::kLaneBlock,
          3 * simd::kLaneBlock + 7};
}

TEST(SimdKernels, BgkMatchesScalarPerNode) {
  for (Size n : interesting_lengths()) {
    LaneRun run(n, 0xB6Cull + n);
    const auto expect = run.scalar_bgk();

    AlignedBuffer<Real> out[kQ];
    const Real* src[kQ];
    Real* dst[kQ];
    for (int dir = 0; dir < kQ; ++dir) {
      out[dir].reset(n);
      src[dir] = run.planes[dir].data();
      dst[dir] = out[dir].data();
    }
    fused_block_bgk(src, dst, run.fx.data(), run.fy.data(),
                    run.fz.data(), n, kTau);

    for (Size i = 0; i < n; ++i) {
      for (int dir = 0; dir < kQ; ++dir) {
        EXPECT_DOUBLE_EQ(out[dir][i], expect[i][dir])
            << "n=" << n << " node=" << i << " dir=" << dir;
      }
    }
  }
}

TEST(SimdKernels, MrtMatchesScalarPerNode) {
  const MrtOperator op(MrtRelaxation::from_tau(kTau));
  for (Size n : interesting_lengths()) {
    LaneRun run(n, 0x317ull + n);
    const auto expect = run.scalar_mrt(op);

    AlignedBuffer<Real> out[kQ];
    const Real* src[kQ];
    Real* dst[kQ];
    for (int dir = 0; dir < kQ; ++dir) {
      out[dir].reset(n);
      src[dir] = run.planes[dir].data();
      dst[dir] = out[dir].data();
    }
    fused_block_mrt(src, dst, run.fx.data(), run.fy.data(),
                    run.fz.data(), n, op);

    for (Size i = 0; i < n; ++i) {
      for (int dir = 0; dir < kQ; ++dir) {
        EXPECT_DOUBLE_EQ(out[dir][i], expect[i][dir])
            << "n=" << n << " node=" << i << " dir=" << dir;
      }
    }
  }
}

TEST(SimdKernels, InPlaceCollideMatchesOutOfPlace) {
  // dst == src is the pure-collide contract the cube scratch path and
  // any future in-place caller rely on.
  const Size n = 2 * simd::kLaneBlock + 5;
  LaneRun a(n, 0xFEEDull);
  LaneRun b(n, 0xFEEDull);  // identical contents

  AlignedBuffer<Real> out[kQ];
  const Real* src[kQ];
  Real* dst_out[kQ];
  Real* dst_inplace[kQ];
  for (int dir = 0; dir < kQ; ++dir) {
    out[dir].reset(n);
    src[dir] = a.planes[dir].data();
    dst_out[dir] = out[dir].data();
    dst_inplace[dir] = b.planes[dir].data();
  }
  fused_block_bgk(src, dst_out, a.fx.data(), a.fy.data(), a.fz.data(), n,
                  kTau);
  const Real* src_b[kQ];
  for (int dir = 0; dir < kQ; ++dir) src_b[dir] = b.planes[dir].data();
  fused_block_bgk(src_b, dst_inplace, b.fx.data(), b.fy.data(),
                  b.fz.data(), n, kTau);

  for (int dir = 0; dir < kQ; ++dir) {
    for (Size i = 0; i < n; ++i) {
      EXPECT_EQ(b.planes[dir][i], out[dir][i])
          << "dir=" << dir << " node=" << i;
    }
  }
}

TEST(SimdKernels, RestDirectionConservesMassAtEquilibrium) {
  // At exact equilibrium with zero force the collision is the identity;
  // a quick sanity net under the bit-exact tests above.
  const Size n = simd::kLaneBlock;
  AlignedBuffer<Real> planes[kQ], zero(n), out[kQ];
  const Real* src[kQ];
  Real* dst[kQ];
  for (int dir = 0; dir < kQ; ++dir) {
    planes[dir].reset(n);
    planes[dir].fill(d3q19::w[static_cast<Size>(dir)]);  // rho = 1, u = 0 equilibrium
    out[dir].reset(n);
    src[dir] = planes[dir].data();
    dst[dir] = out[dir].data();
  }
  fused_block_bgk(src, dst, zero.data(), zero.data(), zero.data(), n,
                  kTau);
  for (int dir = 0; dir < kQ; ++dir) {
    for (Size i = 0; i < n; ++i) {
      EXPECT_NEAR(out[dir][i], d3q19::w[static_cast<Size>(dir)], 1e-15);
    }
  }
}

TEST(SimdKernels, AutoTileRespectsBounds) {
  // The auto tile is clamped to [1, ny] for any geometry, including
  // degenerate ones; exact value depends on the probed L2 size.
  for (Index ny : {1, 2, 16, 64, 1024}) {
    for (Index nz : {3, 16, 64, 4096}) {
      const Index tile = fused_auto_tile_y(ny, nz);
      EXPECT_GE(tile, 1) << "ny=" << ny << " nz=" << nz;
      EXPECT_LE(tile, ny) << "ny=" << ny << " nz=" << nz;
    }
  }
}

TEST(SimdKernels, AutoTileShrinksWithRowFootprint) {
  // Doubling the z extent doubles a row's cache footprint, so the tile
  // must not grow; monotonicity is what the cache model promises.
  Index last = fused_auto_tile_y(1 << 20, 4);
  for (Index nz : {8, 16, 64, 256, 1024}) {
    const Index tile = fused_auto_tile_y(1 << 20, nz);
    EXPECT_LE(tile, last) << "nz=" << nz;
    last = tile;
  }
}

}  // namespace
}  // namespace lbmib
