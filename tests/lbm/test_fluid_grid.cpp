#include <gtest/gtest.h>

#include "common/error.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

TEST(FluidGrid, DimensionsAndNodeCount) {
  FluidGrid grid(4, 5, 6);
  EXPECT_EQ(grid.nx(), 4);
  EXPECT_EQ(grid.ny(), 5);
  EXPECT_EQ(grid.nz(), 6);
  EXPECT_EQ(grid.num_nodes(), 120u);
}

TEST(FluidGrid, RejectsEmptyDimensions) {
  EXPECT_THROW(FluidGrid(0, 4, 4), Error);
  EXPECT_THROW(FluidGrid(4, -1, 4), Error);
}

TEST(FluidGrid, IndexIsXMajorZFastest) {
  FluidGrid grid(3, 4, 5);
  EXPECT_EQ(grid.index(0, 0, 0), 0u);
  EXPECT_EQ(grid.index(0, 0, 1), 1u);
  EXPECT_EQ(grid.index(0, 1, 0), 5u);
  EXPECT_EQ(grid.index(1, 0, 0), 20u);
  EXPECT_EQ(grid.index(2, 3, 4), 59u);
}

TEST(FluidGrid, IndexIsBijective) {
  FluidGrid grid(3, 4, 5);
  std::vector<bool> seen(60, false);
  for (Index x = 0; x < 3; ++x) {
    for (Index y = 0; y < 4; ++y) {
      for (Index z = 0; z < 5; ++z) {
        const Size i = grid.index(x, y, z);
        ASSERT_LT(i, 60u);
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
      }
    }
  }
}

TEST(FluidGrid, WrapHandlesNegativeAndOverflow) {
  EXPECT_EQ(FluidGrid::wrap(-1, 8), 7);
  EXPECT_EQ(FluidGrid::wrap(8, 8), 0);
  EXPECT_EQ(FluidGrid::wrap(-9, 8), 7);
  EXPECT_EQ(FluidGrid::wrap(17, 8), 1);
  EXPECT_EQ(FluidGrid::wrap(3, 8), 3);
}

TEST(FluidGrid, PeriodicIndexWraps) {
  FluidGrid grid(4, 4, 4);
  EXPECT_EQ(grid.periodic_index(-1, 0, 0), grid.index(3, 0, 0));
  EXPECT_EQ(grid.periodic_index(4, 5, -2), grid.index(0, 1, 2));
}

TEST(FluidGrid, InitializesToEquilibrium) {
  const Vec3 u0{0.02, -0.01, 0.03};
  FluidGrid grid(4, 4, 4, 1.2, u0);
  for (Size node = 0; node < grid.num_nodes(); ++node) {
    EXPECT_DOUBLE_EQ(grid.rho(node), 1.2);
    EXPECT_EQ(grid.velocity(node), u0);
    for (int dir = 0; dir < kQ; ++dir) {
      EXPECT_DOUBLE_EQ(grid.df(dir, node),
                       d3q19::equilibrium(dir, 1.2, u0));
      EXPECT_EQ(grid.df_new(dir, node), 0.0);
    }
  }
}

TEST(FluidGrid, TotalMassOfUniformState) {
  FluidGrid grid(4, 4, 4, 1.5);
  EXPECT_NEAR(grid.total_mass(), 1.5 * 64, 1e-10);
}

TEST(FluidGrid, TotalMomentumOfUniformState) {
  const Vec3 u0{0.02, 0.0, -0.01};
  FluidGrid grid(4, 4, 4, 1.0, u0);
  const Vec3 p = grid.total_momentum();
  EXPECT_NEAR(p.x, 64 * 0.02, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
  EXPECT_NEAR(p.z, -64 * 0.01, 1e-12);
}

TEST(FluidGrid, ForceAccessAndReset) {
  FluidGrid grid(2, 2, 2);
  grid.add_force(3, {1.0, 2.0, 3.0});
  grid.add_force(3, {1.0, 0.0, 0.0});
  EXPECT_EQ(grid.force(3), (Vec3{2.0, 2.0, 3.0}));
  grid.reset_forces({0.5, 0.0, 0.0});
  for (Size node = 0; node < grid.num_nodes(); ++node) {
    EXPECT_EQ(grid.force(node), (Vec3{0.5, 0.0, 0.0}));
  }
}

TEST(FluidGrid, SolidFlagDefaultsClear) {
  FluidGrid grid(2, 2, 2);
  for (Size node = 0; node < grid.num_nodes(); ++node) {
    EXPECT_FALSE(grid.solid(node));
  }
  grid.set_solid(5, true);
  EXPECT_TRUE(grid.solid(5));
  grid.set_solid(5, false);
  EXPECT_FALSE(grid.solid(5));
}

TEST(FluidGrid, SwapBuffersExchangesPlanes) {
  FluidGrid grid(2, 2, 2);
  grid.df(3, 1) = 42.0;
  grid.df_new(3, 1) = 7.0;
  grid.swap_buffers();
  EXPECT_EQ(grid.df(3, 1), 7.0);
  EXPECT_EQ(grid.df_new(3, 1), 42.0);
}

TEST(FluidGrid, CopyFromReplicatesState) {
  FluidGrid a(3, 3, 3, 1.0, {0.01, 0.0, 0.0});
  a.df(5, 7) = 0.123;
  a.set_solid(2, true);
  a.add_force(4, {1.0, 2.0, 3.0});
  FluidGrid b(3, 3, 3);
  b.copy_from(a);
  EXPECT_EQ(b.df(5, 7), 0.123);
  EXPECT_TRUE(b.solid(2));
  EXPECT_EQ(b.force(4), (Vec3{1.0, 2.0, 3.0}));
  EXPECT_EQ(b.velocity(0), (Vec3{0.01, 0.0, 0.0}));
}

TEST(FluidGrid, CopyFromRejectsMismatchedDims) {
  FluidGrid a(3, 3, 3);
  FluidGrid b(3, 3, 4);
  EXPECT_THROW(b.copy_from(a), Error);
}

TEST(FluidGrid, PlanePointersAreContiguousPerDirection) {
  FluidGrid grid(4, 4, 4);
  for (int dir = 0; dir < kQ; ++dir) {
    EXPECT_EQ(grid.df_plane(dir) + 5, &grid.df(dir, 5));
    EXPECT_EQ(grid.df_new_plane(dir) + 9, &grid.df_new(dir, 9));
  }
}

}  // namespace
}  // namespace lbmib
