#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "cube/cube_grid.hpp"
#include "lbm/boundary.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

TEST(CubeGrid, DimensionsAndCounts) {
  CubeGrid grid(8, 8, 12, 4);
  EXPECT_EQ(grid.cubes_x(), 2);
  EXPECT_EQ(grid.cubes_y(), 2);
  EXPECT_EQ(grid.cubes_z(), 3);
  EXPECT_EQ(grid.num_cubes(), 12u);
  EXPECT_EQ(grid.nodes_per_cube(), 64u);
  EXPECT_EQ(grid.num_nodes(), 768u);
}

TEST(CubeGrid, RejectsIndivisibleDimensions) {
  EXPECT_THROW(CubeGrid(10, 8, 8, 4), Error);
  EXPECT_THROW(CubeGrid(8, 8, 8, 3), Error);
}

TEST(CubeGrid, CubeSizeOneIsValid) {
  CubeGrid grid(4, 4, 4, 1);
  EXPECT_EQ(grid.num_cubes(), 64u);
  EXPECT_EQ(grid.nodes_per_cube(), 1u);
}

TEST(CubeGrid, LocateSplitsCoordinates) {
  CubeGrid grid(8, 8, 8, 4);
  const auto r = grid.locate(5, 2, 7);
  EXPECT_EQ(r.cube, grid.cube_id(1, 0, 1));
  EXPECT_EQ(r.local, grid.local_id(1, 2, 3));
}

TEST(CubeGrid, LocatePeriodicWraps) {
  CubeGrid grid(8, 8, 8, 4);
  const auto r = grid.locate_periodic(-1, 8, 9);
  EXPECT_EQ(r.cube, grid.cube_id(1, 0, 0));
  EXPECT_EQ(r.local, grid.local_id(3, 0, 1));
}

TEST(CubeGrid, LocateIsBijective) {
  CubeGrid grid(8, 4, 4, 2);
  std::vector<bool> seen(grid.num_nodes(), false);
  for (Index x = 0; x < 8; ++x) {
    for (Index y = 0; y < 4; ++y) {
      for (Index z = 0; z < 4; ++z) {
        const auto r = grid.locate(x, y, z);
        const Size flat = r.cube * grid.nodes_per_cube() + r.local;
        ASSERT_LT(flat, seen.size());
        EXPECT_FALSE(seen[flat]);
        seen[flat] = true;
      }
    }
  }
}

TEST(CubeGrid, BlocksAreContiguousAndDisjoint) {
  CubeGrid grid(8, 8, 8, 4);
  const Size stride = CubeGrid::kSlotsPerCube * grid.nodes_per_cube();
  for (Size cube = 0; cube + 1 < grid.num_cubes(); ++cube) {
    EXPECT_EQ(grid.block(cube) + stride, grid.block(cube + 1));
  }
}

TEST(CubeGrid, InitializesToEquilibrium) {
  const Vec3 u0{0.02, 0.01, -0.01};
  CubeGrid grid(8, 8, 8, 4, 1.1, u0);
  for (Size cube = 0; cube < grid.num_cubes(); ++cube) {
    for (Size local = 0; local < grid.nodes_per_cube(); ++local) {
      EXPECT_DOUBLE_EQ(grid.rho(cube, local), 1.1);
      EXPECT_EQ(grid.velocity(cube, local), u0);
      for (int dir = 0; dir < kQ; ++dir) {
        EXPECT_DOUBLE_EQ(grid.df(cube, dir, local),
                         d3q19::equilibrium(dir, 1.1, u0));
      }
    }
  }
}

TEST(CubeGrid, PlanarRoundTripIsExact) {
  FluidGrid planar(8, 8, 8);
  SplitMix64 rng(1);
  for (Size n = 0; n < planar.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      planar.df(d, n) = rng.next_double();
      planar.df_new(d, n) = rng.next_double();
    }
    planar.rho(n) = rng.next_double(0.9, 1.1);
    planar.set_velocity(n, {rng.next_double(), rng.next_double(),
                            rng.next_double()});
    planar.fx(n) = rng.next_double();
    planar.set_solid(n, rng.next_below(5) == 0);
  }
  CubeGrid cubes(8, 8, 8, 4);
  cubes.from_planar(planar);
  FluidGrid back(8, 8, 8);
  cubes.to_planar(back);
  for (Size n = 0; n < planar.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      EXPECT_EQ(back.df(d, n), planar.df(d, n));
      EXPECT_EQ(back.df_new(d, n), planar.df_new(d, n));
    }
    EXPECT_EQ(back.rho(n), planar.rho(n));
    EXPECT_EQ(back.velocity(n), planar.velocity(n));
    EXPECT_EQ(back.fx(n), planar.fx(n));
    EXPECT_EQ(back.solid(n), planar.solid(n));
  }
}

TEST(CubeGrid, FromPlanarRejectsMismatch) {
  FluidGrid planar(8, 8, 4);
  CubeGrid cubes(8, 8, 8, 4);
  EXPECT_THROW(cubes.from_planar(planar), Error);
}

TEST(CubeGrid, BoundaryMaskMatchesPlanar) {
  SimulationParams p = presets::tiny();
  p.boundary = BoundaryType::kChannel;
  FluidGrid planar(p);
  CubeGrid cubes(p);
  for (Index x = 0; x < p.nx; ++x) {
    for (Index y = 0; y < p.ny; ++y) {
      for (Index z = 0; z < p.nz; ++z) {
        const auto r = cubes.locate(x, y, z);
        EXPECT_EQ(cubes.solid(r.cube, r.local),
                  planar.solid(planar.index(x, y, z)));
      }
    }
  }
}

TEST(CubeGrid, ResetForcesSetsConstant) {
  CubeGrid grid(4, 4, 4, 2);
  grid.reset_forces({1.0, 2.0, 3.0});
  for (Size cube = 0; cube < grid.num_cubes(); ++cube) {
    for (Size local = 0; local < grid.nodes_per_cube(); ++local) {
      EXPECT_EQ(grid.force(cube, local), (Vec3{1.0, 2.0, 3.0}));
    }
  }
}

TEST(CubeGrid, AddForceAccumulates) {
  CubeGrid grid(4, 4, 4, 2);
  grid.add_force(3, 5, {1.0, 0.0, 0.0});
  grid.add_force(3, 5, {0.5, 0.25, 0.0});
  EXPECT_EQ(grid.force(3, 5), (Vec3{1.5, 0.25, 0.0}));
}

}  // namespace
}  // namespace lbmib
