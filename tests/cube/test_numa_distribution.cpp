#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "core/cube_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"
#include "cube/numa_distribution.hpp"

namespace lbmib {
namespace {

TEST(NumaMeshBuild, SingleNodeIsIdentity) {
  const MachineTopology thog = thog_topology();
  const NumaMesh nm = numa_hierarchical_mesh(thog, 4);
  EXPECT_EQ(nm.mesh.size(), 4);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(nm.mesh_to_physical[static_cast<Size>(t)], t);
  }
}

TEST(NumaMeshBuild, SixtyFourThreadsOnThog) {
  const MachineTopology thog = thog_topology();
  const NumaMesh nm = numa_hierarchical_mesh(thog, 64);
  // 8 nodes as 2x2x2, 8 cores/node as 2x2x2 -> combined 4x4x4.
  EXPECT_EQ(nm.mesh.p, 4);
  EXPECT_EQ(nm.mesh.q, 4);
  EXPECT_EQ(nm.mesh.r, 4);
  // Bijection onto [0, 64).
  std::set<int> seen(nm.mesh_to_physical.begin(),
                     nm.mesh_to_physical.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(NumaMeshBuild, MeshNeighborsWithinNodeBlockShareNode) {
  const MachineTopology thog = thog_topology();
  const NumaMesh nm = numa_hierarchical_mesh(thog, 64);
  // All mesh positions inside one 2x2x2 core block map to cores of the
  // same NUMA node.
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (int k = 0; k < 2; ++k) {
        const int tid = nm.mesh_to_physical[static_cast<Size>(
            nm.mesh.thread_id(i, j, k))];
        EXPECT_EQ(thog.node_of_core(tid), thog.node_of_core(
            nm.mesh_to_physical[static_cast<Size>(
                nm.mesh.thread_id(0, 0, 0))]));
      }
    }
  }
}

TEST(NumaMeshBuild, RejectsPartialNodes) {
  const MachineTopology thog = thog_topology();
  EXPECT_THROW(numa_hierarchical_mesh(thog, 12), Error);  // 1.5 nodes
  EXPECT_THROW(numa_hierarchical_mesh(thog, 128), Error);  // > machine
}

TEST(NumaDistribution, EveryOwnerValid) {
  const MachineTopology thog = thog_topology();
  const CubeDistribution dist =
      make_numa_distribution(thog, 64, 16, 16, 16);
  for (Index cx = 0; cx < 16; ++cx) {
    for (Index cy = 0; cy < 16; ++cy) {
      for (Index cz = 0; cz < 16; ++cz) {
        const int t = dist.cube2thread(cx, cy, cz);
        EXPECT_GE(t, 0);
        EXPECT_LT(t, 64);
      }
    }
  }
}

TEST(NumaDistribution, BalancedOwnership) {
  const MachineTopology thog = thog_topology();
  const CubeDistribution dist =
      make_numa_distribution(thog, 64, 16, 16, 16);
  for (int t = 0; t < 64; ++t) {
    EXPECT_EQ(dist.cubes_owned(t), 16u * 16 * 16 / 64);
  }
}

TEST(NumaDistribution, EachNodeOwnsContiguousBox) {
  // With the hierarchical block layout, the cubes owned by one NUMA node
  // form an axis-aligned box: checking min/max bounds contain exactly the
  // owned count.
  const MachineTopology thog = thog_topology();
  const CubeDistribution dist =
      make_numa_distribution(thog, 64, 8, 8, 8);
  for (int node = 0; node < 8; ++node) {
    Index lo[3] = {99, 99, 99}, hi[3] = {-1, -1, -1};
    Size count = 0;
    for (Index cx = 0; cx < 8; ++cx) {
      for (Index cy = 0; cy < 8; ++cy) {
        for (Index cz = 0; cz < 8; ++cz) {
          if (thog.node_of_core(dist.cube2thread(cx, cy, cz)) != node) {
            continue;
          }
          ++count;
          lo[0] = std::min(lo[0], cx);
          lo[1] = std::min(lo[1], cy);
          lo[2] = std::min(lo[2], cz);
          hi[0] = std::max(hi[0], cx);
          hi[1] = std::max(hi[1], cy);
          hi[2] = std::max(hi[2], cz);
        }
      }
    }
    ASSERT_GT(count, 0u) << "node " << node;
    const Size box = static_cast<Size>(hi[0] - lo[0] + 1) *
                     static_cast<Size>(hi[1] - lo[1] + 1) *
                     static_cast<Size>(hi[2] - lo[2] + 1);
    EXPECT_EQ(count, box) << "node " << node << " region is not a box";
  }
}

TEST(NumaDistribution, FewerCrossNodeFacesThanNaiveLayout) {
  // The motivating metric: hierarchical layout must not increase (and for
  // this shape strictly decreases) the number of cube faces crossing NUMA
  // node boundaries compared to the naive x-major mesh.
  const MachineTopology thog = thog_topology();
  const Index n = 16;

  const CubeDistribution numa_dist =
      make_numa_distribution(thog, 64, n, n, n);
  CubeDistribution naive(n, n, n, balanced_mesh(64),
                         DistributionPolicy::kBlock);

  const Size numa_faces = cross_node_faces(numa_dist, thog, n, n, n);
  const Size naive_faces = cross_node_faces(naive, thog, n, n, n);
  EXPECT_LT(numa_faces, naive_faces);
}

TEST(NumaDistribution, PermutationValidationCatchesBadMaps) {
  CubeDistribution dist(4, 4, 4, balanced_mesh(8));
  EXPECT_THROW(dist.set_thread_permutation({0, 1}), Error);  // wrong size
  EXPECT_THROW(dist.set_thread_permutation({0, 0, 1, 2, 3, 4, 5, 6}),
               Error);  // not a bijection
  EXPECT_NO_THROW(
      dist.set_thread_permutation({7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(NumaDistribution, PermutationRemapsOwners) {
  CubeDistribution dist(2, 1, 1, ThreadMesh{2, 1, 1});
  EXPECT_EQ(dist.cube2thread(0, 0, 0), 0);
  EXPECT_EQ(dist.cube2thread(1, 0, 0), 1);
  dist.set_thread_permutation({1, 0});
  EXPECT_EQ(dist.cube2thread(0, 0, 0), 1);
  EXPECT_EQ(dist.cube2thread(1, 0, 0), 0);
}

TEST(NumaCubeSolver, MatchesSequentialWithHierarchicalLayout) {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};
  p.cube_size = 2;  // 8^3 cubes so 16 threads each own something
  SequentialSolver seq(p);
  seq.run(6);
  p.num_threads = 16;  // two full NUMA nodes of the thog model
  CubeSolver cube(p, thog_topology());
  cube.run(6);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
}

TEST(NumaCubeSolver, SingleNodeThreadCountAlsoWorks) {
  SimulationParams p = presets::tiny();
  SequentialSolver seq(p);
  seq.run(5);
  p.num_threads = 4;  // fits inside one NUMA node -> identity layout
  CubeSolver cube(p, thog_topology());
  cube.run(5);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-11);
}

TEST(NumaCubeSolver, RejectsPartialNodeSpan) {
  SimulationParams p = presets::tiny();
  p.num_threads = 12;  // 1.5 thog nodes
  EXPECT_THROW(CubeSolver(p, thog_topology()), Error);
}

}  // namespace
}  // namespace lbmib
