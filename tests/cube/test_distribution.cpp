#include <gtest/gtest.h>

#include <vector>

#include "cube/distribution.hpp"

namespace lbmib {
namespace {

using Params = std::tuple<DistributionPolicy, int /*threads*/,
                          Index /*ncx*/, Index /*ncy*/, Index /*ncz*/>;

class DistributionTest : public ::testing::TestWithParam<Params> {
 protected:
  CubeDistribution make() const {
    const auto [policy, threads, ncx, ncy, ncz] = GetParam();
    return CubeDistribution(ncx, ncy, ncz, balanced_mesh(threads), policy);
  }
};

TEST_P(DistributionTest, EveryCubeHasAValidOwner) {
  const auto [policy, threads, ncx, ncy, ncz] = GetParam();
  const CubeDistribution dist = make();
  for (Index cx = 0; cx < ncx; ++cx) {
    for (Index cy = 0; cy < ncy; ++cy) {
      for (Index cz = 0; cz < ncz; ++cz) {
        const int tid = dist.cube2thread(cx, cy, cz);
        EXPECT_GE(tid, 0);
        EXPECT_LT(tid, threads);
      }
    }
  }
}

TEST_P(DistributionTest, OwnershipIsDeterministic) {
  const auto [policy, threads, ncx, ncy, ncz] = GetParam();
  const CubeDistribution a = make();
  const CubeDistribution b = make();
  for (Index cx = 0; cx < ncx; ++cx) {
    for (Index cy = 0; cy < ncy; ++cy) {
      for (Index cz = 0; cz < ncz; ++cz) {
        EXPECT_EQ(a.cube2thread(cx, cy, cz), b.cube2thread(cx, cy, cz));
      }
    }
  }
}

TEST_P(DistributionTest, OwnedCountsSumToTotal) {
  const auto [policy, threads, ncx, ncy, ncz] = GetParam();
  const CubeDistribution dist = make();
  Size total = 0;
  for (int t = 0; t < threads; ++t) total += dist.cubes_owned(t);
  EXPECT_EQ(total, static_cast<Size>(ncx * ncy * ncz));
}

TEST_P(DistributionTest, LoadIsBalancedWhenDivisible) {
  const auto [policy, threads, ncx, ncy, ncz] = GetParam();
  const CubeDistribution dist = make();
  const ThreadMesh mesh = balanced_mesh(threads);
  // Only assert perfect balance when every mesh dimension divides the
  // corresponding cube count.
  if (ncx % mesh.p != 0 || ncy % mesh.q != 0 || ncz % mesh.r != 0) {
    GTEST_SKIP() << "mesh does not divide grid";
  }
  const Size expected =
      static_cast<Size>(ncx * ncy * ncz) / static_cast<Size>(threads);
  for (int t = 0; t < threads; ++t) {
    EXPECT_EQ(dist.cubes_owned(t), expected) << "thread " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributionTest,
    ::testing::Combine(
        ::testing::Values(DistributionPolicy::kBlock,
                          DistributionPolicy::kCyclic,
                          DistributionPolicy::kBlockCyclic),
        ::testing::Values(1, 2, 4, 8),
        ::testing::Values<Index>(2, 4, 8),
        ::testing::Values<Index>(2, 4),
        ::testing::Values<Index>(2, 4)),
    [](const auto& info) {
      const DistributionPolicy policy = std::get<0>(info.param);
      const std::string policy_name =
          policy == DistributionPolicy::kBlock
              ? "block"
              : (policy == DistributionPolicy::kCyclic ? "cyclic"
                                                       : "blockcyclic");
      return policy_name + "_t" + std::to_string(std::get<1>(info.param)) +
             "_c" + std::to_string(std::get<2>(info.param)) +
             std::to_string(std::get<3>(info.param)) +
             std::to_string(std::get<4>(info.param));
    });

TEST(Distribution, PaperFigure6Mapping) {
  // Figure 6: a 4x4x4 fluid grid as 2x2x2 cubes of dimension 2, mapped to
  // a 2x2x2 thread mesh with block distribution: each thread owns exactly
  // the cube at its own mesh coordinate.
  const ThreadMesh mesh{2, 2, 2};
  const CubeDistribution dist(2, 2, 2, mesh, DistributionPolicy::kBlock);
  for (Index cx = 0; cx < 2; ++cx) {
    for (Index cy = 0; cy < 2; ++cy) {
      for (Index cz = 0; cz < 2; ++cz) {
        EXPECT_EQ(dist.cube2thread(cx, cy, cz),
                  mesh.thread_id(static_cast<int>(cx), static_cast<int>(cy),
                                 static_cast<int>(cz)));
      }
    }
  }
}

TEST(Distribution, BlockKeepsContiguousRuns) {
  const CubeDistribution dist(8, 1, 1, ThreadMesh{2, 1, 1},
                              DistributionPolicy::kBlock);
  for (Index cx = 0; cx < 4; ++cx) EXPECT_EQ(dist.cube2thread(cx, 0, 0), 0);
  for (Index cx = 4; cx < 8; ++cx) EXPECT_EQ(dist.cube2thread(cx, 0, 0), 1);
}

TEST(Distribution, CyclicAlternates) {
  const CubeDistribution dist(8, 1, 1, ThreadMesh{2, 1, 1},
                              DistributionPolicy::kCyclic);
  for (Index cx = 0; cx < 8; ++cx) {
    EXPECT_EQ(dist.cube2thread(cx, 0, 0), static_cast<int>(cx % 2));
  }
}

TEST(Distribution, BlockCyclicDealsRuns) {
  const CubeDistribution dist(8, 1, 1, ThreadMesh{2, 1, 1},
                              DistributionPolicy::kBlockCyclic, 2);
  const int expected[8] = {0, 0, 1, 1, 0, 0, 1, 1};
  for (Index cx = 0; cx < 8; ++cx) {
    EXPECT_EQ(dist.cube2thread(cx, 0, 0), expected[cx]);
  }
}

TEST(Fiber2Thread, BlockPartition) {
  EXPECT_EQ(fiber2thread(0, 8, 2), 0);
  EXPECT_EQ(fiber2thread(3, 8, 2), 0);
  EXPECT_EQ(fiber2thread(4, 8, 2), 1);
  EXPECT_EQ(fiber2thread(7, 8, 2), 1);
}

TEST(Fiber2Thread, CyclicPartition) {
  for (Index f = 0; f < 8; ++f) {
    EXPECT_EQ(fiber2thread(f, 8, 3, DistributionPolicy::kCyclic),
              static_cast<int>(f % 3));
  }
}

TEST(Fiber2Thread, AllFibersCoveredMoreThreadsThanFibers) {
  for (Index f = 0; f < 3; ++f) {
    const int tid = fiber2thread(f, 3, 16);
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, 16);
  }
}

TEST(Distribution, PolicyNames) {
  EXPECT_EQ(distribution_policy_name(DistributionPolicy::kBlock), "block");
  EXPECT_EQ(distribution_policy_name(DistributionPolicy::kCyclic), "cyclic");
  EXPECT_EQ(distribution_policy_name(DistributionPolicy::kBlockCyclic),
            "block-cyclic");
}

}  // namespace
}  // namespace lbmib
