#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cube/cube_grid.hpp"
#include "cube/cube_kernels.hpp"
#include "lbm/boundary.hpp"
#include "lbm/collision.hpp"
#include "ib/interpolation.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/macroscopic.hpp"
#include "lbm/streaming.hpp"

namespace lbmib {
namespace {

/// The central property: every cube kernel must produce *exactly* the same
/// state as its planar counterpart, for any cube size.
class CubeKernelEquivalence : public ::testing::TestWithParam<Index> {
 protected:
  static constexpr Index kN = 8;

  void SetUp() override {
    planar_ = std::make_unique<FluidGrid>(kN, kN, kN);
    SplitMix64 rng(99);
    for (Size n = 0; n < planar_->num_nodes(); ++n) {
      for (int d = 0; d < kQ; ++d) {
        planar_->df(d, n) =
            d3q19::w[static_cast<Size>(d)] * (1.0 + 0.2 * rng.next_double());
      }
      planar_->fx(n) = rng.next_double(-1e-3, 1e-3);
      planar_->fy(n) = rng.next_double(-1e-3, 1e-3);
      planar_->fz(n) = rng.next_double(-1e-3, 1e-3);
    }
    cubes_ = std::make_unique<CubeGrid>(kN, kN, kN, GetParam());
    cubes_->from_planar(*planar_);
  }

  void expect_equal_state() {
    FluidGrid back(kN, kN, kN);
    cubes_->to_planar(back);
    for (Size n = 0; n < planar_->num_nodes(); ++n) {
      for (int d = 0; d < kQ; ++d) {
        EXPECT_EQ(back.df(d, n), planar_->df(d, n)) << "df node " << n;
        EXPECT_EQ(back.df_new(d, n), planar_->df_new(d, n))
            << "df_new node " << n;
      }
      EXPECT_EQ(back.rho(n), planar_->rho(n));
      EXPECT_EQ(back.velocity(n), planar_->velocity(n));
    }
  }

  std::unique_ptr<FluidGrid> planar_;
  std::unique_ptr<CubeGrid> cubes_;
};

TEST_P(CubeKernelEquivalence, Collision) {
  collide_range(*planar_, 0.8, 0, planar_->num_nodes());
  for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
    cube_collide(*cubes_, 0.8, cube);
  }
  expect_equal_state();
}

TEST_P(CubeKernelEquivalence, Streaming) {
  stream_x_slab(*planar_, 0, kN);
  for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
    cube_stream(*cubes_, cube);
  }
  expect_equal_state();
}

TEST_P(CubeKernelEquivalence, UpdateVelocity) {
  stream_x_slab(*planar_, 0, kN);
  for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
    cube_stream(*cubes_, cube);
  }
  update_velocity_range(*planar_, 0, planar_->num_nodes());
  for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
    cube_update_velocity(*cubes_, cube);
  }
  expect_equal_state();
}

TEST_P(CubeKernelEquivalence, CopyDistribution) {
  stream_x_slab(*planar_, 0, kN);
  copy_distributions_range(*planar_, 0, planar_->num_nodes());
  // Stream ALL cubes before copying any: copying cube c before its
  // neighbours have pushed into c's df_new would capture stale values
  // (the cube solver separates these phases with a barrier).
  for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
    cube_stream(*cubes_, cube);
  }
  for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
    cube_copy_distributions(*cubes_, cube);
  }
  expect_equal_state();
}

TEST_P(CubeKernelEquivalence, FullKernelSequence) {
  // Kernels 5, 6, 7, 9 chained for two pseudo-steps.
  for (int step = 0; step < 2; ++step) {
    collide_range(*planar_, 0.8, 0, planar_->num_nodes());
    stream_x_slab(*planar_, 0, kN);
    update_velocity_range(*planar_, 0, planar_->num_nodes());
    copy_distributions_range(*planar_, 0, planar_->num_nodes());

    for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
      cube_collide(*cubes_, 0.8, cube);
    }
    for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
      cube_stream(*cubes_, cube);
    }
    for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
      cube_update_velocity(*cubes_, cube);
    }
    for (Size cube = 0; cube < cubes_->num_cubes(); ++cube) {
      cube_copy_distributions(*cubes_, cube);
    }
  }
  expect_equal_state();
}

INSTANTIATE_TEST_SUITE_P(CubeSizes, CubeKernelEquivalence,
                         ::testing::Values<Index>(1, 2, 4, 8),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(CubeKernelsBoundary, StreamingBounceBackMatchesPlanar) {
  SimulationParams p;
  p.nx = 8;
  p.ny = 8;
  p.nz = 8;
  p.cube_size = 4;
  p.boundary = BoundaryType::kChannel;
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  FluidGrid planar(p);
  SplitMix64 rng(5);
  for (Size n = 0; n < planar.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      planar.df(d, n) = planar.solid(n) ? 0.0 : rng.next_double(0.01, 1.0);
    }
  }
  CubeGrid cubes(p);
  cubes.from_planar(planar);

  stream_x_slab(planar, 0, 8);
  for (Size cube = 0; cube < cubes.num_cubes(); ++cube) {
    cube_stream(cubes, cube);
  }
  FluidGrid back(8, 8, 8);
  cubes.to_planar(back);
  for (Size n = 0; n < planar.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      EXPECT_EQ(back.df_new(d, n), planar.df_new(d, n)) << "node " << n;
    }
  }
}

TEST(CubeKernelsInterp, MatchesPlanarInterpolation) {
  FluidGrid planar(8, 8, 8);
  SplitMix64 rng(6);
  for (Size n = 0; n < planar.num_nodes(); ++n) {
    planar.set_velocity(n, {rng.next_double(-0.1, 0.1),
                            rng.next_double(-0.1, 0.1),
                            rng.next_double(-0.1, 0.1)});
  }
  CubeGrid cubes(8, 8, 8, 4);
  cubes.from_planar(planar);
  for (const Vec3& pos :
       {Vec3{4.3, 3.9, 5.1}, Vec3{0.2, 7.8, 1.0}, Vec3{6.66, 2.22, 4.44}}) {
    const Vec3 a = interpolate_velocity(planar, pos);
    const Vec3 b = cube_interpolate_velocity(cubes, pos);
    EXPECT_NEAR(a.x, b.x, 1e-15);
    EXPECT_NEAR(a.y, b.y, 1e-15);
    EXPECT_NEAR(a.z, b.z, 1e-15);
  }
}

}  // namespace
}  // namespace lbmib
