#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "cube/cube_grid.hpp"
#include "cube/cube_kernels.hpp"
#include "ib/fiber_forces.hpp"
#include "ib/fiber_sheet.hpp"
#include "ib/interpolation.hpp"
#include "ib/spreading.hpp"
#include "lbm/fluid_grid.hpp"
#include "parallel/thread_team.hpp"

namespace lbmib {
namespace {

FiberSheet perturbed_sheet(std::uint64_t seed) {
  FiberSheet sheet(6, 6, 5.0, 5.0, {5.0, 5.0, 5.0}, 0.05, 0.01);
  SplitMix64 rng(seed);
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i) += Vec3{rng.next_double(-0.3, 0.3),
                              rng.next_double(-0.3, 0.3),
                              rng.next_double(-0.3, 0.3)};
  }
  compute_all_fiber_forces(sheet);
  return sheet;
}

TEST(CubeSpread, UnlockedMatchesPlanarSpreading) {
  FluidGrid planar(16, 16, 16);
  planar.reset_forces({});
  CubeGrid cubes(16, 16, 16, 4);
  cubes.reset_forces({});
  const FiberSheet sheet = perturbed_sheet(1);

  spread_force(sheet, planar, 0, sheet.num_fibers());
  cube_spread_force_unlocked(sheet, cubes, 0, sheet.num_fibers());

  FluidGrid back(16, 16, 16);
  cubes.to_planar(back);
  for (Size n = 0; n < planar.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(back.fx(n), planar.fx(n)) << n;
    EXPECT_DOUBLE_EQ(back.fy(n), planar.fy(n)) << n;
    EXPECT_DOUBLE_EQ(back.fz(n), planar.fz(n)) << n;
  }
}

TEST(CubeSpread, LockedSingleThreadMatchesUnlocked) {
  CubeGrid a(16, 16, 16, 4), b(16, 16, 16, 4);
  a.reset_forces({});
  b.reset_forces({});
  const FiberSheet sheet = perturbed_sheet(2);
  const CubeDistribution dist(4, 4, 4, balanced_mesh(1));
  std::vector<SpinLock> locks(1);
  cube_spread_force(sheet, a, dist, locks, 0, sheet.num_fibers());
  cube_spread_force_unlocked(sheet, b, 0, sheet.num_fibers());
  for (Size cube = 0; cube < a.num_cubes(); ++cube) {
    for (Size local = 0; local < a.nodes_per_cube(); ++local) {
      // Same adds in the same order, but the two template instantiations
      // may contract multiply-adds differently (-ffp-contract), so allow
      // last-bit noise.
      const Vec3 got = a.force(cube, local);
      const Vec3 want = b.force(cube, local);
      EXPECT_NEAR(got.x, want.x, 1e-16);
      EXPECT_NEAR(got.y, want.y, 1e-16);
      EXPECT_NEAR(got.z, want.z, 1e-16);
    }
  }
}

TEST(CubeSpread, ConcurrentSpreadingIsLossFree) {
  // Many threads spreading into overlapping influential domains through
  // owner locks: totals must match the single-threaded result.
  constexpr int kThreads = 4;
  CubeGrid grid(16, 16, 16, 4);
  grid.reset_forces({});
  const FiberSheet sheet = perturbed_sheet(3);
  const CubeDistribution dist(4, 4, 4, balanced_mesh(kThreads));
  std::vector<SpinLock> locks(kThreads);

  ThreadTeam team(kThreads);
  team.run([&](int tid) {
    for (Index f = 0; f < sheet.num_fibers(); ++f) {
      if (fiber2thread(f, sheet.num_fibers(), kThreads) == tid) {
        cube_spread_force(sheet, grid, dist, locks, f, f + 1);
      }
    }
  });

  CubeGrid reference(16, 16, 16, 4);
  reference.reset_forces({});
  cube_spread_force_unlocked(sheet, reference, 0, sheet.num_fibers());
  for (Size cube = 0; cube < grid.num_cubes(); ++cube) {
    for (Size local = 0; local < grid.nodes_per_cube(); ++local) {
      const Vec3 got = grid.force(cube, local);
      const Vec3 want = reference.force(cube, local);
      EXPECT_NEAR(got.x, want.x, 1e-14);
      EXPECT_NEAR(got.y, want.y, 1e-14);
      EXPECT_NEAR(got.z, want.z, 1e-14);
    }
  }
}

TEST(CubeSpread, MoveFibersMatchesPlanar) {
  FluidGrid planar(16, 16, 16);
  SplitMix64 rng(4);
  for (Size n = 0; n < planar.num_nodes(); ++n) {
    planar.set_velocity(n, {rng.next_double(-0.05, 0.05),
                            rng.next_double(-0.05, 0.05),
                            rng.next_double(-0.05, 0.05)});
  }
  CubeGrid cubes(16, 16, 16, 4);
  cubes.from_planar(planar);

  FiberSheet s1 = perturbed_sheet(5);
  FiberSheet s2(6, 6, 5.0, 5.0, {5.0, 5.0, 5.0}, 0.05, 0.01);
  for (Size i = 0; i < s1.num_nodes(); ++i) s2.position(i) = s1.position(i);

  move_fibers(s1, planar, 0, s1.num_fibers());
  cube_move_fibers(s2, cubes, 0, s2.num_fibers());
  for (Size i = 0; i < s1.num_nodes(); ++i) {
    EXPECT_NEAR(s1.position(i).x, s2.position(i).x, 1e-15) << i;
    EXPECT_NEAR(s1.position(i).y, s2.position(i).y, 1e-15) << i;
    EXPECT_NEAR(s1.position(i).z, s2.position(i).z, 1e-15) << i;
  }
}

}  // namespace
}  // namespace lbmib
