#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "ib/fiber_sheet.hpp"
#include "io/vtk_writer.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class VtkWriterTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "lbmib_vtk_test.vtk";
};

TEST_F(VtkWriterTest, FluidFileHasLegacyHeaderAndFields) {
  FluidGrid grid(3, 4, 5, 1.0, {0.01, 0.02, 0.03});
  write_fluid_vtk(grid, path_);
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(content.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(content.find("DIMENSIONS 3 4 5"), std::string::npos);
  EXPECT_NE(content.find("POINT_DATA 60"), std::string::npos);
  EXPECT_NE(content.find("SCALARS density"), std::string::npos);
  EXPECT_NE(content.find("VECTORS velocity"), std::string::npos);
  EXPECT_NE(content.find("VECTORS force"), std::string::npos);
}

TEST_F(VtkWriterTest, FluidValuesRoundTripThroughText) {
  FluidGrid grid(2, 2, 2, 1.25, {0.5, 0.0, 0.0});
  write_fluid_vtk(grid, path_);
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("1.25"), std::string::npos);
  EXPECT_NE(content.find("0.5 0 0"), std::string::npos);
}

TEST_F(VtkWriterTest, SheetFileHasPolylinesAndForces) {
  FiberSheet sheet(3, 4, 2.0, 3.0, {1.0, 2.0, 3.0}, 0.0, 0.0);
  sheet.elastic_force(0) = {9.0, 0.0, 0.0};
  write_sheet_vtk(sheet, path_);
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("DATASET POLYDATA"), std::string::npos);
  EXPECT_NE(content.find("POINTS 12 double"), std::string::npos);
  EXPECT_NE(content.find("LINES 3 15"), std::string::npos);  // 3*(4+1)
  EXPECT_NE(content.find("VECTORS elastic_force"), std::string::npos);
  EXPECT_NE(content.find("9 0 0"), std::string::npos);
}

TEST_F(VtkWriterTest, SheetPointsMatchPositions) {
  FiberSheet sheet(2, 2, 1.0, 1.0, {7.5, 8.25, 9.125}, 0.0, 0.0);
  write_sheet_vtk(sheet, path_);
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("7.5 8.25 9.125"), std::string::npos);
}

TEST_F(VtkWriterTest, ObservablesFileHasDerivedFields) {
  FluidGrid grid(4, 4, 4, 1.5, {0.02, 0.0, 0.0});
  write_observables_vtk(grid, 0.8, path_);
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("SCALARS pressure"), std::string::npos);
  EXPECT_NE(content.find("VECTORS vorticity"), std::string::npos);
  EXPECT_NE(content.find("SCALARS strain_rate_norm"), std::string::npos);
  // pressure = cs^2 rho = 0.5
  EXPECT_NE(content.find("0.5"), std::string::npos);
}

TEST_F(VtkWriterTest, ThrowsOnUnwritablePath) {
  FluidGrid grid(2, 2, 2);
  EXPECT_THROW(write_fluid_vtk(grid, "/nonexistent_dir_xyz/out.vtk"),
               Error);
  FiberSheet sheet(2, 2, 1.0, 1.0, {}, 0.0, 0.0);
  EXPECT_THROW(write_sheet_vtk(sheet, "/nonexistent_dir_xyz/out.vtk"),
               Error);
}

}  // namespace
}  // namespace lbmib
