#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "io/csv_writer.hpp"

namespace lbmib {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "lbmib_csv_test.csv";
};

TEST_F(CsvWriterTest, HeaderAndRows) {
  {
    CsvWriter csv(path_, {"step", "mass", "momentum"});
    csv.row({1.0, 2.5, 3.0});
    csv.row({2.0, 2.5, 3.25});
  }
  EXPECT_EQ(slurp(path_), "step,mass,momentum\n1,2.5,3\n2,2.5,3.25\n");
}

TEST_F(CsvWriterTest, LabeledRows) {
  {
    CsvWriter csv(path_, {"solver", "threads", "seconds"});
    csv.row("openmp", {8.0, 1.5});
    csv.row("cube", {8.0, 1.0});
  }
  EXPECT_EQ(slurp(path_),
            "solver,threads,seconds\nopenmp,8,1.5\ncube,8,1\n");
}

TEST_F(CsvWriterTest, RejectsWidthMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), Error);
  EXPECT_THROW(csv.row({1.0, 2.0, 3.0}), Error);
  EXPECT_THROW(csv.row("label", {1.0, 2.0}), Error);
}

TEST_F(CsvWriterTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(path_, {}), Error);
}

TEST_F(CsvWriterTest, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/x.csv", {"a"}), Error);
}

}  // namespace
}  // namespace lbmib
