#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/fault_injection.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"
#include "ib/fiber_sheet.hpp"
#include "io/checkpoint.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "lbmib_checkpoint_test.bin";
};

void randomize_state(FluidGrid& grid, FiberSheet& sheet,
                     std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      grid.df(d, n) = rng.next_double();
      grid.df_new(d, n) = rng.next_double();
    }
    grid.rho(n) = rng.next_double(0.9, 1.1);
    grid.set_velocity(
        n, {rng.next_double(), rng.next_double(), rng.next_double()});
    grid.fx(n) = rng.next_double();
    grid.set_solid(n, rng.next_below(7) == 0);
  }
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i) = {rng.next_double(0.0, 10.0),
                         rng.next_double(0.0, 10.0),
                         rng.next_double(0.0, 10.0)};
    sheet.elastic_force(i) = {rng.next_double(), 0.0, 0.0};
    sheet.set_pinned(i, rng.next_below(3) == 0);
  }
}

TEST_F(CheckpointTest, RoundTripIsBitExact) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {2.0, 1.0, 1.0}, 0.05, 0.01);
  randomize_state(grid, sheet, 42);
  save_checkpoint(path_, grid, sheet);

  FluidGrid grid2(6, 4, 4);
  FiberSheet sheet2(3, 4, 2.0, 3.0, {2.0, 1.0, 1.0}, 0.05, 0.01);
  load_checkpoint(path_, grid2, sheet2);

  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      EXPECT_EQ(grid2.df(d, n), grid.df(d, n));
      EXPECT_EQ(grid2.df_new(d, n), grid.df_new(d, n));
    }
    EXPECT_EQ(grid2.rho(n), grid.rho(n));
    EXPECT_EQ(grid2.velocity(n), grid.velocity(n));
    EXPECT_EQ(grid2.fx(n), grid.fx(n));
    EXPECT_EQ(grid2.solid(n), grid.solid(n));
  }
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    EXPECT_EQ(sheet2.position(i), sheet.position(i));
    EXPECT_EQ(sheet2.elastic_force(i), sheet.elastic_force(i));
    EXPECT_EQ(sheet2.pinned(i), sheet.pinned(i));
  }
}

TEST_F(CheckpointTest, ResumedSimulationContinuesIdentically) {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};

  // Run 10 steps straight through.
  SequentialSolver straight(p);
  straight.run(10);

  // Run 5, checkpoint, restore into a fresh solver, run 5 more.
  SequentialSolver first(p);
  first.run(5);
  save_checkpoint(path_, first.fluid(), first.sheet());
  SequentialSolver second(p);
  load_checkpoint(path_, second.fluid(), second.sheet());
  second.run(5);

  for (Size n = 0; n < straight.fluid().num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      EXPECT_EQ(second.fluid().df(d, n), straight.fluid().df(d, n));
    }
  }
  for (Size i = 0; i < straight.sheet().num_nodes(); ++i) {
    EXPECT_EQ(second.sheet().position(i), straight.sheet().position(i));
  }
}

TEST_F(CheckpointTest, RejectsWrongDimensions) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  save_checkpoint(path_, grid, sheet);
  FluidGrid wrong_grid(6, 4, 8);
  EXPECT_THROW(load_checkpoint(path_, wrong_grid, sheet), Error);
  FiberSheet wrong_sheet(3, 5, 2.0, 3.0, {}, 0.0, 0.0);
  EXPECT_THROW(load_checkpoint(path_, grid, wrong_sheet), Error);
}

TEST_F(CheckpointTest, RejectsGarbageFile) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a checkpoint";
  }
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  EXPECT_THROW(load_checkpoint(path_, grid, sheet), Error);
}

TEST_F(CheckpointTest, RejectsTruncatedFile) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  save_checkpoint(path_, grid, sheet);
  // Truncate the file to half.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto full = in.tellg();
  in.seekg(0);
  std::vector<char> half(static_cast<Size>(full) / 2);
  in.read(half.data(), static_cast<std::streamsize>(half.size()));
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(half.data(), static_cast<std::streamsize>(half.size()));
  }
  EXPECT_THROW(load_checkpoint(path_, grid, sheet), Error);
}

TEST_F(CheckpointTest, RejectsMissingFile) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  EXPECT_THROW(load_checkpoint("/nonexistent_xyz/cp.bin", grid, sheet),
               Error);
}

// --- v3 corruption paths ---------------------------------------------------

void expect_load_error_containing(const std::string& path, FluidGrid& grid,
                                  FiberSheet& sheet,
                                  const std::string& needle) {
  try {
    load_checkpoint(path, grid, sheet);
    FAIL() << "expected load_checkpoint to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST_F(CheckpointTest, StepCountRoundTrips) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {2.0, 1.0, 1.0}, 0.05, 0.01);
  save_checkpoint(path_, grid, sheet, 1234);
  EXPECT_EQ(peek_checkpoint_step(path_), 1234);
  FluidGrid grid2(6, 4, 4);
  FiberSheet sheet2(3, 4, 2.0, 3.0, {2.0, 1.0, 1.0}, 0.05, 0.01);
  EXPECT_EQ(load_checkpoint(path_, grid2, sheet2), 1234);
}

TEST_F(CheckpointTest, SaveIsAtomicNoTempFileLeftBehind) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  save_checkpoint(path_, grid, sheet);
  std::ifstream tmp(path_ + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
}

TEST_F(CheckpointTest, WrongMagicSaysNotACheckpoint) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  save_checkpoint(path_, grid, sheet);
  // Corrupt the magic (first 8 bytes).
  fault::flip_bit(path_, 0, 3);
  expect_load_error_containing(path_, grid, sheet, "not a checkpoint");
}

TEST_F(CheckpointTest, UnsupportedVersionRejected) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  save_checkpoint(path_, grid, sheet);
  // The version field is the second u64; 3 -> 2 flips bit 0.
  fault::flip_bit(path_, 8, 0);
  expect_load_error_containing(path_, grid, sheet,
                               "unsupported checkpoint version");
}

TEST_F(CheckpointTest, TruncatedHeaderReportsTruncationNotMismatch) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  save_checkpoint(path_, grid, sheet);
  // Cut the file inside the header (after magic + version + nx).
  fault::truncate_file(path_, 20);
  expect_load_error_containing(path_, grid, sheet, "truncated");
}

TEST_F(CheckpointTest, TruncatedBodyReportsTruncation) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  save_checkpoint(path_, grid, sheet);
  fault::truncate_file(path_, fault::file_size(path_) - 64);
  expect_load_error_containing(path_, grid, sheet, "truncated");
}

TEST_F(CheckpointTest, BitFlippedSectionFailsChecksum) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {2.0, 1.0, 1.0}, 0.05, 0.01);
  randomize_state(grid, sheet, 7);
  save_checkpoint(path_, grid, sheet);
  // Flip one bit deep inside the grid section (header is 60 bytes).
  fault::flip_bit(path_, 4096, 5);
  FluidGrid grid2(6, 4, 4);
  FiberSheet sheet2(3, 4, 2.0, 3.0, {2.0, 1.0, 1.0}, 0.05, 0.01);
  expect_load_error_containing(path_, grid2, sheet2, "checksum");
}

class CheckpointRotationTest : public ::testing::Test {
 protected:
  void TearDown() override { CheckpointRotation(base_).remove_files(); }
  std::string base_ = ::testing::TempDir() + "lbmib_rotation_test.ckpt";
};

TEST_F(CheckpointRotationTest, LoadsNewestSlot) {
  FluidGrid grid(6, 4, 4);
  Structure structure;
  structure.emplace_back(3, 4, 2.0, 3.0, Vec3{2.0, 1.0, 1.0}, 0.05, 0.01);

  CheckpointRotation rotation(base_);
  EXPECT_FALSE(rotation.has_checkpoint());

  randomize_state(grid, structure[0], 1);
  rotation.save(grid, structure, 5);
  randomize_state(grid, structure[0], 2);
  rotation.save(grid, structure, 10);
  EXPECT_EQ(rotation.latest_step(), 10);

  FluidGrid loaded(6, 4, 4);
  Structure loaded_structure;
  loaded_structure.emplace_back(3, 4, 2.0, 3.0, Vec3{2.0, 1.0, 1.0}, 0.05,
                                0.01);
  EXPECT_EQ(rotation.load(loaded, loaded_structure), 10);
  EXPECT_EQ(compare_fluid(loaded, grid).max_any(), 0.0);
}

TEST_F(CheckpointRotationTest, TornNewestSlotFallsBackToPreviousGood) {
  FluidGrid grid(6, 4, 4);
  Structure structure;
  structure.emplace_back(3, 4, 2.0, 3.0, Vec3{2.0, 1.0, 1.0}, 0.05, 0.01);

  CheckpointRotation rotation(base_);
  randomize_state(grid, structure[0], 1);
  rotation.save(grid, structure, 5);
  FluidGrid state_at_5(6, 4, 4);
  state_at_5.copy_from(grid);

  randomize_state(grid, structure[0], 2);
  rotation.save(grid, structure, 10);

  // Tear the newer checkpoint mid-body, as a crash during write would.
  const std::string newer =
      peek_checkpoint_step(rotation.slot_path(0)) == 10
          ? rotation.slot_path(0)
          : rotation.slot_path(1);
  fault::truncate_file(newer, fault::file_size(newer) / 2);

  FluidGrid loaded(6, 4, 4);
  Structure loaded_structure;
  loaded_structure.emplace_back(3, 4, 2.0, 3.0, Vec3{2.0, 1.0, 1.0}, 0.05,
                                0.01);
  EXPECT_EQ(rotation.load(loaded, loaded_structure), 5);
  EXPECT_EQ(compare_fluid(loaded, state_at_5).max_any(), 0.0);
}

TEST_F(CheckpointRotationTest, BothSlotsCorruptThrows) {
  FluidGrid grid(6, 4, 4);
  Structure structure;
  structure.emplace_back(3, 4, 2.0, 3.0, Vec3{2.0, 1.0, 1.0}, 0.05, 0.01);

  CheckpointRotation rotation(base_);
  rotation.save(grid, structure, 5);
  rotation.save(grid, structure, 10);
  for (int slot : {0, 1}) {
    fault::truncate_file(rotation.slot_path(slot),
                         fault::file_size(rotation.slot_path(slot)) / 2);
  }
  EXPECT_THROW(rotation.load(grid, structure), Error);
}

}  // namespace
}  // namespace lbmib
