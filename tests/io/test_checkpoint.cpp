#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/sequential_solver.hpp"
#include "ib/fiber_sheet.hpp"
#include "io/checkpoint.hpp"
#include "lbm/fluid_grid.hpp"

namespace lbmib {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "lbmib_checkpoint_test.bin";
};

void randomize_state(FluidGrid& grid, FiberSheet& sheet,
                     std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      grid.df(d, n) = rng.next_double();
      grid.df_new(d, n) = rng.next_double();
    }
    grid.rho(n) = rng.next_double(0.9, 1.1);
    grid.set_velocity(
        n, {rng.next_double(), rng.next_double(), rng.next_double()});
    grid.fx(n) = rng.next_double();
    grid.set_solid(n, rng.next_below(7) == 0);
  }
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i) = {rng.next_double(0.0, 10.0),
                         rng.next_double(0.0, 10.0),
                         rng.next_double(0.0, 10.0)};
    sheet.elastic_force(i) = {rng.next_double(), 0.0, 0.0};
    sheet.set_pinned(i, rng.next_below(3) == 0);
  }
}

TEST_F(CheckpointTest, RoundTripIsBitExact) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {2.0, 1.0, 1.0}, 0.05, 0.01);
  randomize_state(grid, sheet, 42);
  save_checkpoint(path_, grid, sheet);

  FluidGrid grid2(6, 4, 4);
  FiberSheet sheet2(3, 4, 2.0, 3.0, {2.0, 1.0, 1.0}, 0.05, 0.01);
  load_checkpoint(path_, grid2, sheet2);

  for (Size n = 0; n < grid.num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      EXPECT_EQ(grid2.df(d, n), grid.df(d, n));
      EXPECT_EQ(grid2.df_new(d, n), grid.df_new(d, n));
    }
    EXPECT_EQ(grid2.rho(n), grid.rho(n));
    EXPECT_EQ(grid2.velocity(n), grid.velocity(n));
    EXPECT_EQ(grid2.fx(n), grid.fx(n));
    EXPECT_EQ(grid2.solid(n), grid.solid(n));
  }
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    EXPECT_EQ(sheet2.position(i), sheet.position(i));
    EXPECT_EQ(sheet2.elastic_force(i), sheet.elastic_force(i));
    EXPECT_EQ(sheet2.pinned(i), sheet.pinned(i));
  }
}

TEST_F(CheckpointTest, ResumedSimulationContinuesIdentically) {
  SimulationParams p = presets::tiny();
  p.body_force = {1e-5, 0.0, 0.0};

  // Run 10 steps straight through.
  SequentialSolver straight(p);
  straight.run(10);

  // Run 5, checkpoint, restore into a fresh solver, run 5 more.
  SequentialSolver first(p);
  first.run(5);
  save_checkpoint(path_, first.fluid(), first.sheet());
  SequentialSolver second(p);
  load_checkpoint(path_, second.fluid(), second.sheet());
  second.run(5);

  for (Size n = 0; n < straight.fluid().num_nodes(); ++n) {
    for (int d = 0; d < kQ; ++d) {
      EXPECT_EQ(second.fluid().df(d, n), straight.fluid().df(d, n));
    }
  }
  for (Size i = 0; i < straight.sheet().num_nodes(); ++i) {
    EXPECT_EQ(second.sheet().position(i), straight.sheet().position(i));
  }
}

TEST_F(CheckpointTest, RejectsWrongDimensions) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  save_checkpoint(path_, grid, sheet);
  FluidGrid wrong_grid(6, 4, 8);
  EXPECT_THROW(load_checkpoint(path_, wrong_grid, sheet), Error);
  FiberSheet wrong_sheet(3, 5, 2.0, 3.0, {}, 0.0, 0.0);
  EXPECT_THROW(load_checkpoint(path_, grid, wrong_sheet), Error);
}

TEST_F(CheckpointTest, RejectsGarbageFile) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a checkpoint";
  }
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  EXPECT_THROW(load_checkpoint(path_, grid, sheet), Error);
}

TEST_F(CheckpointTest, RejectsTruncatedFile) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  save_checkpoint(path_, grid, sheet);
  // Truncate the file to half.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto full = in.tellg();
  in.seekg(0);
  std::vector<char> half(static_cast<Size>(full) / 2);
  in.read(half.data(), static_cast<std::streamsize>(half.size()));
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(half.data(), static_cast<std::streamsize>(half.size()));
  }
  EXPECT_THROW(load_checkpoint(path_, grid, sheet), Error);
}

TEST_F(CheckpointTest, RejectsMissingFile) {
  FluidGrid grid(6, 4, 4);
  FiberSheet sheet(3, 4, 2.0, 3.0, {}, 0.0, 0.0);
  EXPECT_THROW(load_checkpoint("/nonexistent_xyz/cp.bin", grid, sheet),
               Error);
}

}  // namespace
}  // namespace lbmib
