// lbmib-lock-discipline must flag manual lock()/unlock() pairs and
// blocking calls made while a SpinLock is held.
//
// EXPECT: manual 'lock()' call; use a RAII guard
// EXPECT: manual 'unlock()' call; use a RAII guard
// EXPECT: while a SpinLock is held (guard 'guard' is live)
#include "stub_lbmib.h"

int shared_counter;

void manual_locking(lbmib::SpinLock& mu) {
  mu.lock();
  ++shared_counter;
  mu.unlock();
}

void blocking_under_spinlock(lbmib::SpinLock& mu, lbmib::Channel<int>& ch) {
  lbmib::SpinLockGuard guard(mu);
  int msg = 0;
  ch.recv(msg);
  shared_counter += msg;
}
