// lbmib-raw-sync must flag raw standard-library synchronization that
// bypasses the instrumented primitives in src/parallel/.
//
// EXPECT: raw 'std::mutex' outside src/parallel/ is invisible to the race detector
// EXPECT: raw 'std::condition_variable' outside src/parallel/
// EXPECT: raw 'std::thread' outside src/parallel/
#include "stub_lbmib.h"

struct Worker {
  std::mutex mu;
  std::condition_variable cv;
  std::thread runner;
};
