// Minimal standalone declarations for the lbmib-tidy lint fixtures.
//
// The fixtures must parse as a single TU with no repo or system
// includes: the clang-tidy plugin engine compiles them with just
// `-std=c++17 -I tests/lint/fixtures`, and hermetic decls keep the AST
// small and the diagnostics' line numbers stable. Only the shapes the
// matchers look at are declared (qualified names, member functions,
// template arity); nothing here is ever linked or executed.
//
// Deliberately violation-free: every fixture includes this header, so a
// stray raw-sync or df-parity pattern here would fail the *_clean
// fixtures under both engines.
#pragma once

namespace std {

class mutex {
 public:
  void lock();
  void unlock();
  bool try_lock();
};

class recursive_mutex {
 public:
  void lock();
  void unlock();
};

class condition_variable {
 public:
  void notify_one();
  void notify_all();
};

class thread {
 public:
  thread();
  template <class F>
  explicit thread(F f);
  void join();
};

namespace chrono {
struct steady_clock {
  struct time_point {};
  static time_point now();
};
struct system_clock {
  struct time_point {};
  static time_point now();
};
struct high_resolution_clock {
  struct time_point {};
  static time_point now();
};
}  // namespace chrono

class random_device {
 public:
  unsigned operator()();
};

template <class K, class V>
class map {
 public:
  V& operator[](const K&);
};
template <class K>
class set {
 public:
  void insert(const K&);
};
template <class K, class V>
class multimap {};
template <class K>
class multiset {};

}  // namespace std

extern "C" {
int rand(void);
void srand(unsigned);
long time(long*);
long clock(void);
}

namespace lbmib {

class SpinLock {
 public:
  void lock();
  void unlock();
  bool try_lock();
};

class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock);
  ~SpinLockGuard();
};

class Mutex {
 public:
  void lock();
  void unlock();
  void wait(std::condition_variable& cv);
  template <class D>
  bool wait_for(std::condition_variable& cv, D timeout);
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex);
  ~MutexLock();
};

void cancel_point(const char* what);
void throw_if_cancelled(const char* what);

struct ProgressBoard {
  static ProgressBoard& global();
  void beat(const char* what);
};

template <class T>
class Channel {
 public:
  void send(T value);
  bool recv(T& out);
  template <class D>
  bool recv_for(T& out, D timeout);
};

class SpinBarrier {
 public:
  void arrive_and_wait();
};

struct SplitMix64 {
  explicit SplitMix64(unsigned long long seed);
  unsigned long long next();
};

struct CubeGrid {
  static constexpr unsigned kDfSlot = 0;
  static constexpr unsigned kDfNewSlot = 19;
  void swap_df_buffers();
  void set_swap_parity(bool parity);
  unsigned df_slot_base() const;
  unsigned df_new_slot_base() const;
  static unsigned df_base_for(bool parity);
  static unsigned df_new_base_for(bool parity);
  double* data();
  double* df_;
  double* df_new_;
};

struct FluidGrid {
  void swap_buffers();
  double* df();
  double* df_new();
};

}  // namespace lbmib
