// lbmib-missing-cancel-point must flag unbounded loops with no
// cancellation poll, heartbeat, or cancellable blocking call.
//
// EXPECT: unbounded loop has no cancel_point(), heartbeat, or cancellable blocking call
#include "stub_lbmib.h"

int poll_flag();
void step_once();

void spin_forever() {
  for (;;) {
    if (poll_flag()) break;
    step_once();
  }
}
