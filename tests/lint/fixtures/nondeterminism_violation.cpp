// lbmib-nondeterminism must flag hidden-input randomness, wall-clock
// reads, and pointer-keyed ordered containers.
//
// EXPECT: 'rand' is nondeterministic across runs
// EXPECT: wall-clock read is nondeterministic across runs
// EXPECT: std::random_device draws from the OS entropy pool
// EXPECT: iterates in address order
#include "stub_lbmib.h"

struct Task {};

int pick() {
  return rand() % 4;
}

void stamp() {
  auto t = std::chrono::system_clock::now();
  (void)t;
}

unsigned hardware_seed() {
  std::random_device rd;
  return rd();
}

std::map<Task*, int> task_priorities;
