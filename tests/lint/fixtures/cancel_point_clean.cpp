// Unbounded loops that poll cancellation, beat the progress board, or
// block on a cancellable primitive must pass lbmib-missing-cancel-point.
//
// EXPECT-CLEAN
#include "stub_lbmib.h"

int poll_flag();
void step_once();

void worker_loop() {
  for (;;) {
    lbmib::cancel_point("worker:loop");
    if (poll_flag()) break;
    step_once();
  }
}

void heartbeat_loop() {
  while (true) {
    lbmib::ProgressBoard::global().beat("drain:loop");
    if (poll_flag()) break;
  }
}

void drain(lbmib::Channel<int>& ch) {
  while (true) {
    int msg = 0;
    if (!ch.recv(msg)) break;  // cancellable blocking receive
    step_once();
  }
}
