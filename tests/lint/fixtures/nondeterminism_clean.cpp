// Seeded RNG, steady_clock durations, and value-keyed containers must
// pass lbmib-nondeterminism.
//
// EXPECT-CLEAN
#include "stub_lbmib.h"

unsigned long long pick(lbmib::SplitMix64& rng) {
  return rng.next() % 4;
}

void duration() {
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::steady_clock::now();
  (void)t0;
  (void)t1;
}

std::map<int, int> task_priorities;  // keyed by stable task id
