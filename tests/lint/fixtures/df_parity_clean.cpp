// Reading df state through the parity accessors must pass
// lbmib-df-parity everywhere in the tree.
//
// EXPECT-CLEAN
#include "stub_lbmib.h"

double* present_base(lbmib::CubeGrid& grid) {
  return grid.data() + grid.df_slot_base();
}

double* next_base(lbmib::CubeGrid& grid) {
  return grid.data() + grid.df_new_slot_base();
}

unsigned captured_parity_base(bool parity) {
  return lbmib::CubeGrid::df_base_for(parity);
}
