// RAII guards, and blocking only after the guard's scope closes, must
// pass lbmib-lock-discipline.
//
// EXPECT-CLEAN
#include "stub_lbmib.h"

int shared_counter;

void guarded(lbmib::SpinLock& mu) {
  lbmib::SpinLockGuard guard(mu);
  ++shared_counter;
}

void block_after_release(lbmib::SpinLock& mu, lbmib::Channel<int>& ch) {
  {
    lbmib::SpinLockGuard guard(mu);
    ++shared_counter;
  }
  int msg = 0;
  ch.recv(msg);
}
