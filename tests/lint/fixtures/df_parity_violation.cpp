// lbmib-df-parity must flag parity flips and raw df-layout access
// outside the approved solver/grid TUs.
//
// EXPECT: 'swap_df_buffers' flips the df/df_new parity
// EXPECT: raw df slot constant 'kDfSlot' names the construction-time layout
// EXPECT: direct access to df storage 'df_'
#include "stub_lbmib.h"

void bad_flip(lbmib::CubeGrid& grid) {
  grid.swap_df_buffers();
}

double* bad_base(lbmib::CubeGrid& grid) {
  return grid.data() + lbmib::CubeGrid::kDfSlot;
}

double* bad_field(lbmib::CubeGrid& grid) {
  return grid.df_;
}
