// The library's own primitives — and NOLINT'ed deliberate exceptions —
// must pass lbmib-raw-sync.
//
// EXPECT-CLEAN
#include "stub_lbmib.h"

struct Worker {
  lbmib::Mutex mu;
  lbmib::SpinLock spin;
  // A daemon that must outlive cancellation is a documented exception.
  std::thread monitor;  // NOLINT(lbmib-raw-sync) daemon outlives cancellation
};

void serialize(Worker& w) {
  lbmib::MutexLock lock(w.mu);
}
