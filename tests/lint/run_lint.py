#!/usr/bin/env python3
"""Fixture driver for the lbmib-* protocol checks (ctest label: lint).

Runs one lint engine over a fixture (or the whole src/ tree) and
asserts the observable behavior both engines must share:

  * a *_violation.cpp fixture declares its expected diagnostics as
    `// EXPECT: <substring>` lines — each substring must appear in some
    emitted diagnostic, and at least one lbmib-* diagnostic must fire;
  * a *_clean.cpp fixture declares `// EXPECT-CLEAN` — no lbmib-*
    diagnostic may fire;
  * --tree runs the engine over src/ and requires zero diagnostics
    (every deliberate exception in the tree carries a NOLINT + reason).

Engines:
  python   scripts/lbmib_lint.py (always available)
  plugin   clang-tidy --load liblbmib_tidy.so; needs $LBMIB_TIDY_PLUGIN
           (or --plugin) and a clang-tidy binary ($CLANG_TIDY or PATH)
  auto     plugin when available, else python (the default)

Because the fixtures assert message *substrings*, they hold the AST
engine and the regex fallback to the same contract; a message edit in
one engine that is not mirrored in the other fails these tests.

Exit: 0 pass, 1 assertion failed, 2 usage error / missing tool.
"""

import argparse
import os
import pathlib
import shutil
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
PY_ENGINE = REPO / "scripts" / "lbmib_lint.py"
FIXTURE_INCLUDE = HERE / "fixtures"


def resolve_plugin(explicit):
    plugin = explicit or os.environ.get("LBMIB_TIDY_PLUGIN", "")
    if not plugin or not pathlib.Path(plugin).is_file():
        return None, None
    tidy = os.environ.get("CLANG_TIDY", "") or shutil.which("clang-tidy")
    if not tidy:
        return None, None
    return plugin, tidy


def run_python(target):
    proc = subprocess.run(
        [sys.executable, str(PY_ENGINE), str(target)],
        capture_output=True,
        text=True,
    )
    return proc.stdout.splitlines(), proc.returncode


def run_plugin(target, plugin, tidy):
    proc = subprocess.run(
        [
            tidy,
            f"--load={plugin}",
            "--checks=-*,lbmib-*",
            str(target),
            "--",
            "-std=c++17",
            f"-I{FIXTURE_INCLUDE}",
        ],
        capture_output=True,
        text=True,
    )
    # clang-tidy exits non-zero on hard errors (bad plugin, parse
    # failure) but 0 even with warnings; surface hard errors loudly.
    if proc.returncode not in (0, 1):
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(2)
    return proc.stdout.splitlines(), proc.returncode


def parse_expectations(path):
    expects, clean = [], False
    for line in path.read_text().splitlines():
        line = line.strip()
        if line.startswith("// EXPECT-CLEAN"):
            clean = True
        elif line.startswith("// EXPECT:"):
            expects.append(line[len("// EXPECT:"):].strip())
    return expects, clean


def check_fixture(path, engine, plugin, tidy):
    expects, clean = parse_expectations(path)
    if not expects and not clean:
        print(f"error: {path} declares no EXPECT lines", file=sys.stderr)
        return 2
    if engine == "plugin":
        lines, _ = run_plugin(path, plugin, tidy)
    else:
        lines, _ = run_python(path)
    diags = [ln for ln in lines if "[lbmib-" in ln]

    failures = []
    if clean and diags:
        failures.append("expected a clean run, got:")
        failures.extend("  " + d for d in diags)
    if expects and not diags:
        failures.append("expected diagnostics, engine emitted none")
    for want in expects:
        if not any(want in d for d in diags):
            failures.append(f"no diagnostic contains: {want!r}")

    name = path.name
    if failures:
        print(f"FAIL [{engine}] {name}")
        for f in failures:
            print("  " + f)
        if diags:
            print("  emitted:")
            for d in diags:
                print("    " + d)
        return 1
    print(f"ok   [{engine}] {name} "
          f"({len(diags)} diagnostic(s), {len(expects)} expectation(s))")
    return 0


def check_tree(engine, plugin, tidy):
    if engine == "plugin":
        # The plugin tree run needs a compile database; that path is
        # exercised by scripts/run_clang_tidy.sh --lbmib (CI custom-lint
        # job). Here the portable engine scans the same files.
        print("note: --tree always uses the python engine "
              "(the plugin tree run goes through run_clang_tidy.sh)")
    proc = subprocess.run(
        [sys.executable, str(PY_ENGINE)], capture_output=True, text=True
    )
    if proc.returncode == 0:
        print("ok   [python] src/ tree clean")
        return 0
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    print("FAIL [python] src/ tree has undocumented diagnostics")
    return 1


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fixture", type=pathlib.Path)
    ap.add_argument("--tree", action="store_true")
    ap.add_argument("--engine", choices=("auto", "python", "plugin"),
                    default="auto")
    ap.add_argument("--plugin", help="path to liblbmib_tidy.so")
    args = ap.parse_args(argv)

    if bool(args.fixture) == args.tree:
        ap.error("exactly one of --fixture / --tree is required")

    plugin, tidy = resolve_plugin(args.plugin)
    engine = args.engine
    if engine == "auto":
        engine = "plugin" if plugin else "python"
    elif engine == "plugin" and not plugin:
        print("error: plugin engine requested but no plugin/clang-tidy "
              "found (set LBMIB_TIDY_PLUGIN and CLANG_TIDY)",
              file=sys.stderr)
        return 2

    if args.tree:
        return check_tree(engine, plugin, tidy)
    if not args.fixture.is_file():
        print(f"error: no such fixture: {args.fixture}", file=sys.stderr)
        return 2
    return check_fixture(args.fixture.resolve(), engine, plugin, tidy)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
