// Physics validation: body-force-driven planar Poiseuille flow.
//
// A channel with no-slip walls at the y extremes and a constant body force
// g along x converges to the parabolic profile
//     u_x(y) = g / (2 nu) * (y - y0) (y1 - y),
// where the half-way bounce-back walls sit at y0 = 0.5 and y1 = ny - 1.5.
// This validates collision + Guo forcing + streaming + bounce-back + the
// macroscopic update acting together.
#include <gtest/gtest.h>

#include <cmath>

#include "lbm/collision.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/macroscopic.hpp"
#include "lbm/streaming.hpp"

namespace lbmib {
namespace {

class PoiseuilleTest : public ::testing::Test {
 protected:
  static constexpr Index kNx = 4, kNy = 12, kNz = 4;
  static constexpr Real kTau = 0.8;
  static constexpr Real kForce = 1e-6;

  void SetUp() override {
    grid_ = std::make_unique<FluidGrid>(kNx, kNy, kNz);
    // Walls only at the y extremes (planar channel; x and z periodic).
    for (Index x = 0; x < kNx; ++x) {
      for (Index z = 0; z < kNz; ++z) {
        grid_->set_solid(grid_->index(x, 0, z), true);
        grid_->set_solid(grid_->index(x, kNy - 1, z), true);
      }
    }
  }

  void run(int steps) {
    for (int s = 0; s < steps; ++s) {
      grid_->reset_forces({kForce, 0.0, 0.0});
      collide_range(*grid_, kTau, 0, grid_->num_nodes());
      stream_x_slab(*grid_, 0, kNx);
      update_velocity_range(*grid_, 0, grid_->num_nodes());
      copy_distributions_range(*grid_, 0, grid_->num_nodes());
    }
  }

  Real analytic(Real y) const {
    const Real nu = (kTau - 0.5) / 3.0;
    const Real y0 = 0.5, y1 = static_cast<Real>(kNy) - 1.5;
    return kForce / (2.0 * nu) * (y - y0) * (y1 - y);
  }

  std::unique_ptr<FluidGrid> grid_;
};

TEST_F(PoiseuilleTest, ConvergesToParabolicProfile) {
  run(1200);
  for (Index y = 1; y < kNy - 1; ++y) {
    const Real u = grid_->ux(grid_->index(2, y, 2));
    const Real expected = analytic(static_cast<Real>(y));
    EXPECT_NEAR(u, expected, 0.03 * analytic(0.5 * (kNy - 1)))
        << "y=" << y;
  }
}

TEST_F(PoiseuilleTest, CenterlineVelocityMatchesTheory) {
  run(1200);
  // kNy even: the two central fluid rows straddle the true centerline.
  const Real u5 = grid_->ux(grid_->index(1, 5, 1));
  const Real u6 = grid_->ux(grid_->index(1, 6, 1));
  const Real u_center = 0.5 * (u5 + u6);
  const Real expected =
      0.5 * (analytic(5.0) + analytic(6.0));
  EXPECT_NEAR(u_center, expected, 0.02 * expected);
}

TEST_F(PoiseuilleTest, ProfileIsSymmetric) {
  run(800);
  for (Index y = 1; y < kNy / 2; ++y) {
    const Real lo = grid_->ux(grid_->index(0, y, 2));
    const Real hi = grid_->ux(grid_->index(0, kNy - 1 - y, 2));
    EXPECT_NEAR(lo, hi, 1e-12) << "y=" << y;
  }
}

TEST_F(PoiseuilleTest, CrossFlowVanishes) {
  run(800);
  for (Size n = 0; n < grid_->num_nodes(); ++n) {
    EXPECT_NEAR(grid_->uy(n), 0.0, 1e-12);
    EXPECT_NEAR(grid_->uz(n), 0.0, 1e-12);
  }
}

TEST_F(PoiseuilleTest, FlowIsTranslationInvariantAlongXAndZ) {
  run(400);
  const Real ref = grid_->ux(grid_->index(0, 4, 0));
  for (Index x = 0; x < kNx; ++x) {
    for (Index z = 0; z < kNz; ++z) {
      EXPECT_NEAR(grid_->ux(grid_->index(x, 4, z)), ref, 1e-12);
    }
  }
}

}  // namespace
}  // namespace lbmib
