// Physics validation of the two-way FSI coupling: the structure feels the
// fluid (it is advected and deformed by the flow) and the fluid feels the
// structure (elastic forces change the flow).
#include <gtest/gtest.h>

#include <cmath>

#include "core/sequential_solver.hpp"
#include "core/verification.hpp"

namespace lbmib {
namespace {

SimulationParams flow_params() {
  SimulationParams p = presets::tiny();
  p.initial_velocity = {0.03, 0.0, 0.0};
  p.body_force = {};
  return p;
}

TEST(FsiBehaviour, SheetIsCarriedDownstream) {
  SequentialSolver solver(flow_params());
  const Real x0 = solver.sheet().centroid().x;
  solver.run(20);
  const Real x1 = solver.sheet().centroid().x;
  // Advected at roughly the flow speed.
  EXPECT_NEAR(x1 - x0, 20 * 0.03, 0.2 * (20 * 0.03));
}

TEST(FsiBehaviour, PinnedStructureObstructsLocalFlow) {
  // The elastic forces are internal to the sheet and sum to zero, so a
  // sheet cannot change the *total* fluid momentum; what it does is
  // obstruct the flow locally. The fluid speed at the pinned plate must
  // drop well below the free-stream speed of an unobstructed run.
  SimulationParams with_sheet = flow_params();
  // Dense sheet (node spacing < half a lattice unit, so it is not porous
  // to the delta coupling) with its central patch anchored.
  with_sheet.num_fibers = 12;
  with_sheet.nodes_per_fiber = 12;
  with_sheet.pin_mode = PinMode::kCenter;
  with_sheet.stretching_coeff = 0.1;
  with_sheet.bending_coeff = 0.01;
  SimulationParams no_sheet = flow_params();
  no_sheet.num_fibers = 0;
  no_sheet.nodes_per_fiber = 0;

  SequentialSolver a(with_sheet), b(no_sheet);
  a.run(50);
  b.run(50);

  // The anchored sheet distorts the flow: somewhere the streamwise
  // velocity dips well below the free stream (and jets above it near the
  // anchor). Without a sheet the flow stays uniform.
  auto min_ux = [](const FluidGrid& grid) {
    Real m = 1e30;
    for (Size n = 0; n < grid.num_nodes(); ++n) {
      m = std::min(m, grid.ux(n));
    }
    return m;
  };
  EXPECT_LT(min_ux(a.fluid()), 0.85 * 0.03);
  EXPECT_GT(min_ux(b.fluid()), 0.99 * 0.03);
  // And the total momentum is (nearly) unchanged by the internal forces.
  EXPECT_NEAR(a.fluid().total_momentum().x, b.fluid().total_momentum().x,
              0.05 * b.fluid().total_momentum().x);
}

TEST(FsiBehaviour, PinnedSheetDeforms) {
  // A center-pinned plate in a flow (the paper's Figure 1 scenario): free
  // edges bend downstream while the pinned region holds, so the sheet
  // is no longer planar in x.
  SimulationParams p = flow_params();
  p.pin_mode = PinMode::kCenter;
  SequentialSolver solver(p);
  solver.run(25);
  const FiberSheet& sheet = solver.sheet();
  Real min_x = 1e30, max_x = -1e30;
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    min_x = std::min(min_x, sheet.position(i).x);
    max_x = std::max(max_x, sheet.position(i).x);
  }
  EXPECT_GT(max_x - min_x, 0.1);  // deformed out of plane
  // Pinned nodes never moved.
  for (Index f = 0; f < sheet.num_fibers(); ++f) {
    for (Index j = 0; j < sheet.nodes_per_fiber(); ++j) {
      const Size i = sheet.id(f, j);
      if (sheet.pinned(i)) {
        EXPECT_DOUBLE_EQ(sheet.position(i).x, p.sheet_origin.x);
      }
    }
  }
}

TEST(FsiBehaviour, ElasticSheetResistsStretching) {
  // Compare a stiff vs floppy sheet pinned at the leading edge in the
  // same flow. Elasticity shows up in the *local strain*: a stiff sheet
  // keeps node spacing near the rest length while a floppy one lets the
  // flow tear its nodes apart from the anchored edge.
  auto mean_strain = [](Real ks, Real kb) {
    SimulationParams p = flow_params();
    p.pin_mode = PinMode::kLeadingEdge;
    p.stretching_coeff = ks;
    p.bending_coeff = kb;
    SequentialSolver solver(p);
    solver.run(120);
    const FiberSheet& sheet = solver.sheet();
    Real strain = 0.0;
    Size segments = 0;
    for (Index f = 0; f < sheet.num_fibers(); ++f) {
      for (Index j = 0; j + 1 < sheet.nodes_per_fiber(); ++j) {
        const Real len =
            norm(sheet.position(f, j + 1) - sheet.position(f, j));
        strain += std::abs(len - sheet.ds_along()) / sheet.ds_along();
        ++segments;
      }
    }
    return strain / static_cast<Real>(segments);
  };
  const Real stiff = mean_strain(3.0, 0.3);
  const Real floppy = mean_strain(0.001, 0.0001);
  EXPECT_LT(stiff, 0.5 * floppy)
      << "stiff=" << stiff << " floppy=" << floppy;
}

TEST(FsiBehaviour, QuiescentCoupledSystemStaysQuiescent) {
  // No flow, rest-configuration sheet: nothing should move.
  SimulationParams p = presets::tiny();
  p.initial_velocity = {};
  p.body_force = {};
  SequentialSolver solver(p);
  const Vec3 centroid0 = solver.sheet().centroid();
  const Real mass0 = solver.fluid().total_mass();
  solver.run(10);
  EXPECT_NEAR(norm(solver.sheet().centroid() - centroid0), 0.0, 1e-12);
  EXPECT_NEAR(solver.fluid().total_mass(), mass0, 1e-9);
  EXPECT_NEAR(norm(solver.fluid().total_momentum()), 0.0, 1e-10);
}

TEST(FsiBehaviour, MomentumBalanceOfForceFreeSystem) {
  // Periodic box, no body force: fluid + structure exchange momentum
  // through the delta coupling, but the elastic forces are internal, so
  // total fluid momentum change per step equals the spread force (which
  // sums to ~0 for a free sheet). Verify the fluid momentum stays small.
  SimulationParams p = presets::tiny();
  p.initial_velocity = {};
  p.body_force = {};
  SequentialSolver solver(p);
  // Deform the sheet so there are internal forces.
  FiberSheet& sheet = solver.sheet();
  for (Size i = 0; i < sheet.num_nodes(); ++i) {
    sheet.position(i).x +=
        0.2 * std::sin(static_cast<Real>(i));
  }
  solver.run(15);
  // Internal forces sum to ~0 -> fluid momentum stays ~0 despite local
  // swirls.
  EXPECT_LT(norm(solver.fluid().total_momentum()), 1e-6);
  // But locally the fluid did move (the coupling is alive):
  Real max_u = 0.0;
  for (Size n = 0; n < solver.fluid().num_nodes(); ++n) {
    max_u = std::max(max_u, std::abs(solver.fluid().ux(n)));
  }
  EXPECT_GT(max_u, 1e-8);
}

TEST(FsiBehaviour, LongRunStaysStableAndBounded) {
  // 400 coupled steps with a pinned sheet in a driven channel: the state
  // must stay finite, the velocity bounded well below lattice speed, and
  // the sheet inside the domain.
  SimulationParams p = presets::tiny();
  p.boundary = BoundaryType::kChannel;
  p.body_force = {2e-5, 0.0, 0.0};
  p.sheet_origin = {6.0, 6.0, 6.0};
  p.pin_mode = PinMode::kLeadingEdge;
  SequentialSolver solver(p);
  solver.run(400);
  const FluidGrid& grid = solver.fluid();
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    ASSERT_TRUE(std::isfinite(grid.rho(n))) << n;
    ASSERT_GT(grid.solid(n) ? 1.0 : grid.rho(n), 0.0) << n;
  }
  Real max_u = 0.0;
  for (Size n = 0; n < grid.num_nodes(); ++n) {
    max_u = std::max(max_u, std::abs(grid.ux(n)));
  }
  EXPECT_LT(max_u, 0.3);
  for (Size i = 0; i < solver.sheet().num_nodes(); ++i) {
    const Vec3& x = solver.sheet().position(i);
    ASSERT_TRUE(std::isfinite(x.x) && std::isfinite(x.y) &&
                std::isfinite(x.z));
    // Walls confine the sheet in y/z (positions are unwrapped in x).
    EXPECT_GT(x.y, 0.0);
    EXPECT_LT(x.y, static_cast<Real>(p.ny));
    EXPECT_GT(x.z, 0.0);
    EXPECT_LT(x.z, static_cast<Real>(p.nz));
  }
}

}  // namespace
}  // namespace lbmib
