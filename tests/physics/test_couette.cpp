// Couette flow: a moving top plate over a fixed bottom plate (periodic in
// x and y) drives a linear velocity profile u_x(z) — the analytic
// validation of the moving-wall bounce-back used for the cavity lid.
#include <gtest/gtest.h>

#include <cmath>

#include "lbm/collision.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/macroscopic.hpp"
#include "lbm/streaming.hpp"

namespace lbmib {
namespace {

class CouetteTest : public ::testing::Test {
 protected:
  static constexpr Index kNx = 4, kNy = 4, kNz = 14;
  static constexpr Real kTau = 0.8;
  static constexpr Real kULid = 0.04;

  void SetUp() override {
    grid_ = std::make_unique<FluidGrid>(kNx, kNy, kNz);
    for (Index x = 0; x < kNx; ++x) {
      for (Index y = 0; y < kNy; ++y) {
        grid_->set_solid(grid_->index(x, y, 0), true);
        grid_->set_solid(grid_->index(x, y, kNz - 1), true);
      }
    }
    grid_->set_lid_velocity({kULid, 0.0, 0.0});
  }

  void run(int steps) {
    for (int s = 0; s < steps; ++s) {
      collide_range(*grid_, kTau, 0, grid_->num_nodes());
      stream_x_slab(*grid_, 0, kNx);
      update_velocity_range(*grid_, 0, grid_->num_nodes());
      copy_distributions_range(*grid_, 0, grid_->num_nodes());
    }
  }

  /// Analytic steady profile with half-way walls at z = 0.5 and
  /// z = nz - 1.5.
  Real analytic(Real z) const {
    const Real z0 = 0.5, z1 = static_cast<Real>(kNz) - 1.5;
    return kULid * (z - z0) / (z1 - z0);
  }

  std::unique_ptr<FluidGrid> grid_;
};

TEST_F(CouetteTest, ConvergesToLinearProfile) {
  run(1500);
  for (Index z = 1; z < kNz - 1; ++z) {
    const Real u = grid_->ux(grid_->index(2, 2, z));
    EXPECT_NEAR(u, analytic(static_cast<Real>(z)), 0.02 * kULid)
        << "z=" << z;
  }
}

TEST_F(CouetteTest, WallShearStressIsUniform) {
  run(1500);
  // du_x/dz is constant in Couette flow: compare finite differences at
  // two heights.
  const Real g_low = grid_->ux(grid_->index(1, 1, 4)) -
                     grid_->ux(grid_->index(1, 1, 3));
  const Real g_high = grid_->ux(grid_->index(1, 1, 10)) -
                      grid_->ux(grid_->index(1, 1, 9));
  EXPECT_NEAR(g_low, g_high, 0.02 * std::abs(g_low));
}

TEST_F(CouetteTest, NoCrossFlow) {
  run(800);
  for (Size n = 0; n < grid_->num_nodes(); ++n) {
    EXPECT_NEAR(grid_->uy(n), 0.0, 1e-12);
    EXPECT_NEAR(grid_->uz(n), 0.0, 1e-12);
  }
}

TEST_F(CouetteTest, MassConserved) {
  const Real mass0 = grid_->total_mass();
  run(500);
  EXPECT_NEAR(grid_->total_mass(), mass0, 1e-8 * mass0);
}

TEST(CollisionGalilean, EquilibriumMomentsShiftCorrectly) {
  // Galilean invariance at the discrete level: colliding an equilibrium
  // state boosted by U leaves it an equilibrium at the boosted velocity
  // (to the model's O(u^3) accuracy, exact here since feq is the input).
  for (const Vec3 boost :
       {Vec3{0.05, 0.0, 0.0}, Vec3{0.02, -0.03, 0.01}}) {
    FluidGrid grid(4, 4, 4, 1.0, boost);
    collide_range(grid, 0.8, 0, grid.num_nodes());
    for (Size n = 0; n < grid.num_nodes(); ++n) {
      for (int dir = 0; dir < kQ; ++dir) {
        EXPECT_NEAR(grid.df(dir, n), d3q19::equilibrium(dir, 1.0, boost),
                    1e-14);
      }
    }
  }
}

}  // namespace
}  // namespace lbmib
