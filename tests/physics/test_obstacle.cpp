// Rigid spherical obstacles: flow past a bluff body through bounce-back.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/config_file.hpp"
#include "common/error.hpp"
#include "core/cube_solver.hpp"
#include "core/distributed2d_solver.hpp"
#include "core/distributed_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"
#include "lbm/boundary.hpp"

namespace lbmib {
namespace {

SimulationParams sphere_params() {
  SimulationParams p;
  p.nx = 32;
  p.ny = 16;
  p.nz = 16;
  p.boundary = BoundaryType::kChannel;
  p.body_force = {2e-5, 0.0, 0.0};
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  p.obstacles.push_back(SphereObstacle{{10.0, 8.0, 8.0}, 3.0});
  return p;
}

TEST(Obstacle, Validation) {
  SimulationParams p = sphere_params();
  EXPECT_NO_THROW(p.validate());
  p.obstacles[0].radius = 0.0;
  EXPECT_THROW(p.validate(), Error);
  p = sphere_params();
  p.obstacles[0].center = {100.0, 8.0, 8.0};
  EXPECT_THROW(p.validate(), Error);
}

TEST(Obstacle, MaskMarksTheSphere) {
  const SimulationParams p = sphere_params();
  EXPECT_TRUE(is_boundary_solid(p, 10, 8, 8));   // center
  EXPECT_TRUE(is_boundary_solid(p, 12, 8, 8));   // inside radius
  EXPECT_FALSE(is_boundary_solid(p, 14, 8, 8));  // just outside
  EXPECT_FALSE(is_boundary_solid(p, 20, 8, 8));  // downstream fluid
  FluidGrid grid(p);
  EXPECT_TRUE(grid.solid(grid.index(10, 8, 8)));
  EXPECT_FALSE(grid.solid(grid.index(20, 8, 8)));
}

TEST(Obstacle, PlanarAndCubeMasksAgree) {
  const SimulationParams p = sphere_params();
  FluidGrid planar(p);
  CubeGrid cubes(p);
  for (Index x = 0; x < p.nx; ++x) {
    for (Index y = 0; y < p.ny; ++y) {
      for (Index z = 0; z < p.nz; ++z) {
        const auto r = cubes.locate(x, y, z);
        EXPECT_EQ(cubes.solid(r.cube, r.local),
                  planar.solid(planar.index(x, y, z)));
      }
    }
  }
}

TEST(Obstacle, WakeVelocityDeficitForms) {
  SequentialSolver solver(sphere_params());
  solver.run(300);
  const FluidGrid& grid = solver.fluid();
  // Behind the sphere the streamwise velocity is depressed relative to
  // the unobstructed lane at the same x.
  const Real wake = grid.ux(grid.index(15, 8, 8));
  const Real side = grid.ux(grid.index(15, 3, 8));
  EXPECT_LT(wake, side);
  // And the far-downstream centerline recovers toward positive flow.
  EXPECT_GT(grid.ux(grid.index(28, 8, 8)), 0.0);
}

TEST(Obstacle, NoFlowInsideTheSphere) {
  SequentialSolver solver(sphere_params());
  solver.run(100);
  const FluidGrid& grid = solver.fluid();
  EXPECT_EQ(grid.velocity(grid.index(10, 8, 8)), Vec3{});
  EXPECT_EQ(grid.velocity(grid.index(11, 8, 8)), Vec3{});
}

TEST(Obstacle, AllSolversAgree) {
  SimulationParams p = sphere_params();
  SequentialSolver seq(p);
  seq.run(10);
  p.num_threads = 4;
  CubeSolver cube(p);
  cube.run(10);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-12) << "cube";
  DistributedSolver dist(p);
  dist.run(10);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-12) << "dist1d";
  Distributed2DSolver dist2(p);
  dist2.run(10);
  EXPECT_LT(compare_solvers(seq, dist2).max_any(), 1e-12) << "dist2d";
}

TEST(Obstacle, SphereSpanningRankBoundary) {
  // The obstacle sits exactly on the x-split of a 2-rank decomposition:
  // ghost masks must reproduce it on both sides.
  SimulationParams p = sphere_params();
  p.obstacles[0].center = {16.0, 8.0, 8.0};  // on the 2-rank split
  SequentialSolver seq(p);
  seq.run(10);
  p.num_threads = 2;
  DistributedSolver dist(p);
  dist.run(10);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-12);
}

TEST(Obstacle, ConfigFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "lbmib_obstacle.cfg";
  SimulationParams p = sphere_params();
  p.obstacles.push_back(SphereObstacle{{24.0, 4.0, 12.0}, 1.5});
  save_params_file(p, path);
  const SimulationParams q = load_params_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(q.obstacles.size(), 2u);
  EXPECT_EQ(q.obstacles[0].center, p.obstacles[0].center);
  EXPECT_DOUBLE_EQ(q.obstacles[1].radius, 1.5);
}

TEST(Obstacle, ConfigSectionParses) {
  std::istringstream in(
      "nx = 32\nny = 16\nnz = 16\nboundary = channel\n"
      "num_fibers = 0\nnodes_per_fiber = 0\n"
      "[obstacle]\ncenter = 10 8 8\nradius = 3\n");
  const SimulationParams p = parse_params(in);
  ASSERT_EQ(p.obstacles.size(), 1u);
  EXPECT_DOUBLE_EQ(p.obstacles[0].radius, 3.0);
  std::istringstream bad("[obstacle]\nbogus = 1\n");
  EXPECT_THROW(parse_params(bad), Error);
}

}  // namespace
}  // namespace lbmib
