// Physics validation: Taylor-Green vortex viscous decay.
//
// In a periodic box, the velocity field
//   u =  U sin(kx x) cos(ky y),  v = -U cos(kx x) sin(ky y),  w = 0
// decays self-similarly with kinetic energy E(t) = E(0) exp(-2 nu k^2 t),
// k^2 = kx^2 + ky^2. The measured decay rate validates that the BGK
// collision reproduces the intended kinematic viscosity
// nu = cs^2 (tau - 1/2).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "lbm/collision.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/macroscopic.hpp"
#include "lbm/streaming.hpp"

namespace lbmib {
namespace {

class TaylorGreenTest : public ::testing::TestWithParam<Real /*tau*/> {
 protected:
  static constexpr Index kN = 16;
  static constexpr Real kU0 = 0.02;

  void init() {
    grid_ = std::make_unique<FluidGrid>(kN, kN, kN);
    const Real k = 2.0 * std::numbers::pi_v<Real> / static_cast<Real>(kN);
    for (Index x = 0; x < kN; ++x) {
      for (Index y = 0; y < kN; ++y) {
        for (Index z = 0; z < kN; ++z) {
          const Vec3 u{kU0 * std::sin(k * x) * std::cos(k * y),
                       -kU0 * std::cos(k * x) * std::sin(k * y), 0.0};
          const Size node = grid_->index(x, y, z);
          grid_->set_velocity(node, u);
          for (int dir = 0; dir < kQ; ++dir) {
            grid_->df(dir, node) = d3q19::equilibrium(dir, 1.0, u);
          }
        }
      }
    }
  }

  void step(Real tau) {
    collide_range(*grid_, tau, 0, grid_->num_nodes());
    stream_x_slab(*grid_, 0, kN);
    update_velocity_range(*grid_, 0, grid_->num_nodes());
    copy_distributions_range(*grid_, 0, grid_->num_nodes());
  }

  Real kinetic_energy() const {
    Real e = 0.0;
    for (Size n = 0; n < grid_->num_nodes(); ++n) {
      const Vec3 u = grid_->velocity(n);
      e += dot(u, u);
    }
    return e;
  }

  std::unique_ptr<FluidGrid> grid_;
};

TEST_P(TaylorGreenTest, EnergyDecayMatchesViscosity) {
  const Real tau = GetParam();
  const Real nu = (tau - 0.5) / 3.0;
  const Real k = 2.0 * std::numbers::pi_v<Real> / static_cast<Real>(kN);
  const Real k2 = 2.0 * k * k;

  init();
  // Skip an initial transient (compressibility adjustment), then measure
  // the exponential decay rate over a window.
  for (int s = 0; s < 10; ++s) step(tau);
  const Real e_start = kinetic_energy();
  constexpr int kWindow = 30;
  for (int s = 0; s < kWindow; ++s) step(tau);
  const Real e_end = kinetic_energy();

  const Real measured_rate = std::log(e_start / e_end) / kWindow;
  const Real expected_rate = 2.0 * nu * k2;
  EXPECT_NEAR(measured_rate, expected_rate, 0.05 * expected_rate)
      << "tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(Taus, TaylorGreenTest,
                         ::testing::Values<Real>(0.6, 0.8, 1.0),
                         [](const auto& info) {
                           return "tau" +
                                  std::to_string(
                                      static_cast<int>(info.param * 10));
                         });

TEST(TaylorGreen, VorticityPatternPreserved) {
  // The flow decays in amplitude but keeps its spatial structure: the
  // velocity at t > 0 stays proportional to the initial field.
  constexpr Index kN = 16;
  constexpr Real kU0 = 0.02;
  FluidGrid grid(kN, kN, kN);
  const Real k = 2.0 * std::numbers::pi_v<Real> / static_cast<Real>(kN);
  auto field = [&](Index x, Index y) {
    return Vec3{kU0 * std::sin(k * x) * std::cos(k * y),
                -kU0 * std::cos(k * x) * std::sin(k * y), 0.0};
  };
  for (Index x = 0; x < kN; ++x) {
    for (Index y = 0; y < kN; ++y) {
      for (Index z = 0; z < kN; ++z) {
        const Size node = grid.index(x, y, z);
        for (int dir = 0; dir < kQ; ++dir) {
          grid.df(dir, node) = d3q19::equilibrium(dir, 1.0, field(x, y));
        }
      }
    }
  }
  for (int s = 0; s < 20; ++s) {
    collide_range(grid, 0.8, 0, grid.num_nodes());
    stream_x_slab(grid, 0, kN);
    update_velocity_range(grid, 0, grid.num_nodes());
    copy_distributions_range(grid, 0, grid.num_nodes());
  }
  // Compare normalized velocities at a few probe points.
  const Size probe1 = grid.index(4, 2, 0);
  const Size probe2 = grid.index(2, 4, 7);
  const Real ratio1 = grid.ux(probe1) / field(4, 2).x;
  const Real ratio2 = grid.uy(probe2) / field(2, 4).y;
  EXPECT_GT(ratio1, 0.5);
  EXPECT_LT(ratio1, 1.0);
  EXPECT_NEAR(ratio1, ratio2, 0.02);
}

}  // namespace
}  // namespace lbmib
