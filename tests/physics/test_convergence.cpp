// Spatial convergence order of the fluid substrate: the paper states the
// LBM is "of second-order accuracy in both time and space". Verify on
// body-force-driven Poiseuille flow by doubling the channel resolution
// (in diffusive scaling: force adjusted so the physical problem matches)
// and comparing the profile error against the analytic parabola.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "lbm/collision.hpp"
#include "lbm/d3q19.hpp"
#include "lbm/fluid_grid.hpp"
#include "lbm/macroscopic.hpp"
#include "lbm/streaming.hpp"

namespace lbmib {
namespace {

/// Max relative error of the steady channel profile at `ny` lattice
/// widths, driven so the analytic centerline velocity is ~0.02.
Real poiseuille_error(Index ny, int steps) {
  constexpr Index kNx = 4, kNz = 4;
  constexpr Real kTau = 0.8;
  const Real nu = (kTau - 0.5) / 3.0;
  const Real width = static_cast<Real>(ny) - 2.0;  // half-way walls
  const Real u_center = 0.02;
  const Real force = 8.0 * nu * u_center / (width * width);

  FluidGrid grid(kNx, ny, kNz);
  for (Index x = 0; x < kNx; ++x) {
    for (Index z = 0; z < kNz; ++z) {
      grid.set_solid(grid.index(x, 0, z), true);
      grid.set_solid(grid.index(x, ny - 1, z), true);
    }
  }
  for (int s = 0; s < steps; ++s) {
    grid.reset_forces({force, 0.0, 0.0});
    collide_range(grid, kTau, 0, grid.num_nodes());
    stream_x_slab(grid, 0, kNx);
    update_velocity_range(grid, 0, grid.num_nodes());
    copy_distributions_range(grid, 0, grid.num_nodes());
  }

  const Real y0 = 0.5, y1 = static_cast<Real>(ny) - 1.5;
  Real max_err = 0.0;
  for (Index y = 1; y < ny - 1; ++y) {
    const Real analytic = force / (2.0 * nu) *
                          (static_cast<Real>(y) - y0) *
                          (y1 - static_cast<Real>(y));
    const Real err =
        std::abs(grid.ux(grid.index(2, y, 2)) - analytic);
    max_err = std::max(max_err, err / u_center);
  }
  return max_err;
}

TEST(Convergence, PoiseuilleErrorSmallAtBothResolutions) {
  // With half-way bounce-back + Guo forcing the parabola is resolved
  // almost exactly (the scheme is exact for quadratic profiles up to
  // compressibility error), so the error floor is tight at both sizes.
  const Real coarse = poiseuille_error(10, 2000);
  const Real fine = poiseuille_error(20, 8000);
  EXPECT_LT(coarse, 0.02);
  EXPECT_LT(fine, 0.02);
  // Refinement must not make things worse.
  EXPECT_LE(fine, coarse * 1.5);
}

TEST(Convergence, TaylorGreenDecaySecondOrderInResolution) {
  // Measure the decay-rate error of the Taylor-Green vortex at N and 2N;
  // second-order spatial accuracy means the error drops by ~4x (allow
  // 2.5x for the finite measuring window).
  auto rate_error = [](Index n) {
    constexpr Real kTau = 0.8, kU0 = 0.01;
    const Real nu = (kTau - 0.5) / 3.0;
    const Real k = 2.0 * M_PI / static_cast<Real>(n);
    const Real expected = 2.0 * nu * 2.0 * k * k;

    FluidGrid grid(n, n, 4);
    // 2-D Taylor-Green in x-y, uniform in z.
    for (Index x = 0; x < n; ++x) {
      for (Index y = 0; y < n; ++y) {
        for (Index z = 0; z < 4; ++z) {
          const Vec3 u{kU0 * std::sin(k * x) * std::cos(k * y),
                       -kU0 * std::cos(k * x) * std::sin(k * y), 0.0};
          const Size node = grid.index(x, y, z);
          for (int dir = 0; dir < kQ; ++dir) {
            grid.df(dir, node) = d3q19::equilibrium(dir, 1.0, u);
          }
        }
      }
    }
    auto energy = [&] {
      Real e = 0.0;
      for (Size node = 0; node < grid.num_nodes(); ++node) {
        e += norm2(grid.velocity(node));
      }
      return e;
    };
    auto step = [&] {
      collide_range(grid, kTau, 0, grid.num_nodes());
      stream_x_slab(grid, 0, n);
      update_velocity_range(grid, 0, grid.num_nodes());
      copy_distributions_range(grid, 0, grid.num_nodes());
    };
    for (int s = 0; s < 10; ++s) step();
    const Real e0 = energy();
    const int window = static_cast<int>(n) * 2;
    for (int s = 0; s < window; ++s) step();
    const Real measured = std::log(e0 / energy()) / window;
    return std::abs(measured - expected) / expected;
  };

  const Real err_coarse = rate_error(12);
  const Real err_fine = rate_error(24);
  EXPECT_LT(err_fine, err_coarse / 2.5)
      << "coarse " << err_coarse << " fine " << err_fine;
}

}  // namespace
}  // namespace lbmib
