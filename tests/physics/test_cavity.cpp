// Lid-driven cavity: the classic closed-box validation of moving-wall
// bounce-back. The z = nz-1 lid drags fluid along +x, setting up a
// recirculating vortex.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/cube_solver.hpp"
#include "core/distributed_solver.hpp"
#include "core/sequential_solver.hpp"
#include "core/verification.hpp"
#include "lbm/observables.hpp"

namespace lbmib {
namespace {

SimulationParams cavity_params() {
  SimulationParams p;
  p.nx = 16;
  p.ny = 16;
  p.nz = 16;
  p.tau = 0.8;
  p.boundary = BoundaryType::kCavity;
  p.lid_velocity = {0.05, 0.0, 0.0};
  p.num_fibers = 0;
  p.nodes_per_fiber = 0;
  return p;
}

TEST(Cavity, Validation) {
  SimulationParams p = cavity_params();
  EXPECT_NO_THROW(p.validate());
  p.lid_velocity = {0.0, 0.0, 0.1};  // normal component forbidden
  EXPECT_THROW(p.validate(), Error);
  p = cavity_params();
  p.lid_velocity = {0.4, 0.0, 0.0};
  EXPECT_THROW(p.validate(), Error);
}

TEST(Cavity, AllSixFacesAreWalls) {
  FluidGrid grid(cavity_params());
  EXPECT_TRUE(grid.solid(grid.index(0, 8, 8)));
  EXPECT_TRUE(grid.solid(grid.index(15, 8, 8)));
  EXPECT_TRUE(grid.solid(grid.index(8, 0, 8)));
  EXPECT_TRUE(grid.solid(grid.index(8, 15, 8)));
  EXPECT_TRUE(grid.solid(grid.index(8, 8, 0)));
  EXPECT_TRUE(grid.solid(grid.index(8, 8, 15)));
  EXPECT_FALSE(grid.solid(grid.index(8, 8, 8)));
  EXPECT_TRUE(grid.has_lid());
}

TEST(Cavity, LidDragsAdjacentFluid) {
  SequentialSolver solver(cavity_params());
  solver.run(100);
  const FluidGrid& grid = solver.fluid();
  // Fluid just under the lid moves with the lid's direction...
  EXPECT_GT(grid.ux(grid.index(8, 8, 14)), 0.005);
  // ...and the return flow near the bottom runs the other way.
  EXPECT_LT(grid.ux(grid.index(8, 8, 2)), 0.0);
}

TEST(Cavity, VortexForms) {
  SequentialSolver solver(cavity_params());
  solver.run(200);
  const FluidGrid& grid = solver.fluid();
  // The primary vortex rotates about the y axis: omega_y < 0 for a +x
  // lid at the top (u_x increases with z in the core).
  const Vec3 w = vorticity(grid, 8, 8, 8);
  EXPECT_GT(std::abs(w.y), 1e-5);
  EXPECT_GT(enstrophy(grid), 0.0);
}

TEST(Cavity, MassConserved) {
  SequentialSolver solver(cavity_params());
  const Real mass0 = solver.fluid().total_mass();
  solver.run(150);
  EXPECT_NEAR(solver.fluid().total_mass(), mass0, 1e-8 * mass0);
}

TEST(Cavity, ZeroLidVelocityStaysQuiescent) {
  SimulationParams p = cavity_params();
  p.lid_velocity = {};
  SequentialSolver solver(p);
  solver.run(30);
  EXPECT_NEAR(max_velocity_magnitude(solver.fluid()), 0.0, 1e-14);
}

TEST(Cavity, StaysStableLongRun) {
  SequentialSolver solver(cavity_params());
  solver.run(500);
  const Real m = max_velocity_magnitude(solver.fluid());
  EXPECT_TRUE(std::isfinite(m));
  EXPECT_LT(m, 0.1);  // bounded by the lid speed scale
}

TEST(Cavity, CubeSolverMatchesSequential) {
  SimulationParams p = cavity_params();
  SequentialSolver seq(p);
  seq.run(20);
  for (Index k : {Index{2}, Index{4}, Index{8}}) {
    SimulationParams q = p;
    q.cube_size = k;
    q.num_threads = 4;
    CubeSolver cube(q);
    cube.run(20);
    EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-12) << "k=" << k;
  }
}

TEST(Cavity, DistributedSolverMatchesSequential) {
  SimulationParams p = cavity_params();
  SequentialSolver seq(p);
  seq.run(20);
  p.num_threads = 4;
  DistributedSolver dist(p);
  dist.run(20);
  EXPECT_LT(compare_solvers(seq, dist).max_any(), 1e-12);
}

TEST(Cavity, ObliqueLidVelocity) {
  SimulationParams p = cavity_params();
  p.lid_velocity = {0.03, 0.02, 0.0};
  SequentialSolver seq(p);
  seq.run(15);
  p.num_threads = 2;
  CubeSolver cube(p);
  cube.run(15);
  EXPECT_LT(compare_solvers(seq, cube).max_any(), 1e-12);
  // The y component of the lid drags fluid in y too.
  EXPECT_GT(seq.fluid().uy(seq.fluid().index(8, 8, 14)), 0.001);
}

}  // namespace
}  // namespace lbmib
