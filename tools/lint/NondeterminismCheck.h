// lbmib-nondeterminism: kernel and scheduler code must be replayable.
// The model checker replays serialized schedules byte-for-byte
// (DESIGN.md §15) and ResilientRunner replays from checkpoints (§9);
// both assume that the same inputs produce the same execution. rand()
// and wall-clock reads smuggle hidden inputs in, and pointer-keyed
// ordered containers iterate in address order — different every run
// under ASLR. Use lbmib::SplitMix64 (src/common/rng.hpp) with an
// explicit seed, steady_clock for durations, and stable ids as map
// keys.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace lbmib {

class NondeterminismCheck : public ClangTidyCheck {
public:
  NondeterminismCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace lbmib
} // namespace tidy
} // namespace clang
