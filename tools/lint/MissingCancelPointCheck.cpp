#include "MissingCancelPointCheck.h"

#include "LbmibTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace lbmib {

namespace {

/// Default set mirroring scripts/lbmib_lint.py: the cancellation seams
/// (parallel/cancel.hpp), the heartbeat, and every blocking library
/// call that itself polls the CancelToken.
constexpr char kDefaultCancelNames[] =
    "cancel_point,throw_if_cancelled,cancelled,beat,heartbeat,"
    "wait,wait_for,wait_until,wait_until_for,arrive_and_wait,"
    "recv,try_recv,recv_for,sched_point";

/// Literal-true loop condition (or absent): `while (true)`, `while (1)`,
/// `for (;;)`. Computed conditions are assumed bounded — flagging every
/// `while (head < tail)` would bury the signal.
bool isUnboundedCondition(const Expr *Cond) {
  if (Cond == nullptr)
    return true;
  const Expr *E = Cond->IgnoreParenImpCasts();
  if (const auto *B = dyn_cast<CXXBoolLiteralExpr>(E))
    return B->getValue();
  if (const auto *I = dyn_cast<IntegerLiteral>(E))
    return I->getValue() != 0;
  return false;
}

} // namespace

MissingCancelPointCheck::MissingCancelPointCheck(StringRef Name,
                                                ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      CancelNames(Options.get("CancelNames", kDefaultCancelNames)) {
  for (llvm::StringRef N : splitNameList(CancelNames))
    NameSet.insert(N);
}

void MissingCancelPointCheck::storeOptions(
    ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "CancelNames", CancelNames);
}

void MissingCancelPointCheck::registerMatchers(
    ast_matchers::MatchFinder *Finder) {
  Finder->addMatcher(
      whileStmt(unless(isExpansionInSystemHeader())).bind("while"), this);
  Finder->addMatcher(
      forStmt(unless(isExpansionInSystemHeader())).bind("for"), this);
}

bool MissingCancelPointCheck::containsCancellation(const Stmt *Body) const {
  if (Body == nullptr)
    return false;
  llvm::SmallVector<const Stmt *, 32> Work;
  Work.push_back(Body);
  while (!Work.empty()) {
    const Stmt *S = Work.pop_back_val();
    if (S == nullptr)
      continue;
    if (const auto *Call = dyn_cast<CallExpr>(S)) {
      if (const FunctionDecl *Callee = Call->getDirectCallee()) {
        if (NameSet.count(Callee->getNameAsString()))
          return true;
      }
    }
    // Dependent/unresolved member calls in templates still carry the
    // member name; honor it so templated worker loops don't need
    // suppressions.
    if (const auto *M = dyn_cast<CXXDependentScopeMemberExpr>(S)) {
      if (NameSet.count(M->getMember().getAsString()))
        return true;
    }
    for (const Stmt *Child : S->children())
      Work.push_back(Child);
  }
  return false;
}

void MissingCancelPointCheck::check(
    const ast_matchers::MatchFinder::MatchResult &Result) {
  const Stmt *Body = nullptr;
  const Expr *Cond = nullptr;
  SourceLocation Loc;
  if (const auto *W = Result.Nodes.getNodeAs<WhileStmt>("while")) {
    Cond = W->getCond();
    Body = W->getBody();
    Loc = W->getWhileLoc();
  } else if (const auto *F = Result.Nodes.getNodeAs<ForStmt>("for")) {
    Cond = F->getCond();
    Body = F->getBody();
    Loc = F->getForLoc();
  } else {
    return;
  }

  if (!isUnboundedCondition(Cond))
    return;
  if (containsCancellation(Body))
    return;

  diag(Loc,
       "unbounded loop has no cancel_point(), heartbeat, or cancellable "
       "blocking call on any path; a wedge here is invisible to the "
       "watchdog and cannot be unwound (src/parallel/cancel.hpp)");
}

} // namespace lbmib
} // namespace tidy
} // namespace clang
