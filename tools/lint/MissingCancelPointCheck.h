// lbmib-missing-cancel-point: the PR-6 hang-proofing invariant. Every
// unbounded loop (`for (;;)`, `while (true)`) must contain, on some
// path, either a cooperative cancellation poll (cancel_point,
// throw_if_cancelled), a heartbeat (ProgressBoard::beat), or a call
// into a cancellable blocking primitive (barrier arrive_and_wait,
// Channel::recv/recv_for, Mutex::wait/wait_for, mc::sched_point...).
// A loop with none of these can wedge forever: the watchdog sees the
// thread's heartbeat go stale but cancellation cannot unwind it, so the
// hang survives until the process is killed.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/StringSet.h"

namespace clang {
namespace tidy {
namespace lbmib {

class MissingCancelPointCheck : public ClangTidyCheck {
public:
  MissingCancelPointCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  bool containsCancellation(const Stmt *Body) const;

  /// Comma-separated callee names that satisfy the invariant.
  const std::string CancelNames;
  llvm::StringSet<> NameSet;
};

} // namespace lbmib
} // namespace tidy
} // namespace clang
