// lbmib-raw-sync: raw standard-library synchronization outside
// src/parallel/ is invisible to the race detector (DESIGN.md §12), the
// model checker (§15), and the cancellation layer (§14) — all three
// hook the *library's* primitives, not libstdc++'s. A std::mutex in a
// solver can deadlock without the watchdog attributing it and without
// the DPOR engine being able to preempt around it. This check flags
// declarations of std::mutex / std::condition_variable / std::thread
// (and friends), bare atomic fences, and pthread calls anywhere the
// allowlist regex does not match, and names the library primitive to
// use instead.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace lbmib {

class RawSyncCheck : public ClangTidyCheck {
public:
  RawSyncCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  /// Paths where raw primitives are the implementation substrate (the
  /// wrappers have to be built out of something).
  const std::string AllowedPathRegex;
};

} // namespace lbmib
} // namespace tidy
} // namespace clang
