#include "RawSyncCheck.h"

#include "LbmibTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace lbmib {

namespace {

/// The replacement hint for a given raw construct's qualified name.
llvm::StringRef hintFor(llvm::StringRef Qualified) {
  if (Qualified.contains("condition_variable"))
    return "route the wait through lbmib::Mutex::wait/wait_for "
           "(src/parallel/mutex.hpp) so cancellation and the model "
           "checker see the blocking edge";
  if (Qualified.contains("mutex"))
    return "use lbmib::Mutex with MutexLock, or lbmib::SpinLock with "
           "SpinLockGuard (src/parallel/mutex.hpp, spinlock.hpp)";
  if (Qualified.contains("thread"))
    return "use lbmib::ThreadTeam (src/parallel/thread_team.hpp), which "
           "enrolls workers in heartbeats, cancellation and the race "
           "detector";
  if (Qualified.contains("fence"))
    return "publish through a release/acquire pair on a named "
           "std::atomic instead: the detectors model objects, not fences";
  return "use the instrumented primitives in src/parallel/";
}

} // namespace

RawSyncCheck::RawSyncCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedPathRegex(Options.get("AllowedPathRegex",
                                   "(^|/)src/parallel/")) {}

void RawSyncCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedPathRegex", AllowedPathRegex);
}

void RawSyncCheck::registerMatchers(ast_matchers::MatchFinder *Finder) {
  const auto RawSyncRecord = cxxRecordDecl(hasAnyName(
      "::std::mutex", "::std::recursive_mutex", "::std::timed_mutex",
      "::std::recursive_timed_mutex", "::std::shared_mutex",
      "::std::shared_timed_mutex", "::std::condition_variable",
      "::std::condition_variable_any", "::std::thread", "::std::jthread"));

  // Owning declarations (locals, members, params by value). References
  // and pointers are deliberately not flagged: the owner is the
  // violation, a leaf wrapper taking `std::condition_variable&` (like
  // lbmib::Mutex::wait) is the approved seam.
  Finder->addMatcher(
      valueDecl(hasType(hasUnqualifiedDesugaredType(recordType(
                    hasDeclaration(RawSyncRecord.bind("type"))))),
                unless(isExpansionInSystemHeader()))
          .bind("decl"),
      this);

  // Bare fences and direct pthread calls.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::std::atomic_thread_fence", "::std::atomic_signal_fence",
                   "::atomic_thread_fence", "::pthread_create",
                   "::pthread_mutex_init", "::pthread_mutex_lock",
                   "::pthread_mutex_unlock", "::pthread_cond_init",
                   "::pthread_cond_wait", "::pthread_cond_signal",
                   "::pthread_barrier_init", "::pthread_barrier_wait"))
                   .bind("fn")),
               unless(isExpansionInSystemHeader()))
          .bind("call"),
      this);
}

void RawSyncCheck::check(
    const ast_matchers::MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  std::string Construct;

  if (const auto *D = Result.Nodes.getNodeAs<ValueDecl>("decl")) {
    const auto *T = Result.Nodes.getNodeAs<CXXRecordDecl>("type");
    if (T == nullptr)
      return;
    Loc = D->getLocation();
    Construct = T->getQualifiedNameAsString();
  } else if (const auto *C = Result.Nodes.getNodeAs<CallExpr>("call")) {
    const auto *F = Result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (F == nullptr)
      return;
    Loc = C->getBeginLoc();
    Construct = F->getQualifiedNameAsString();
  } else {
    return;
  }

  if (pathMatches(AllowedPathRegex, locationPath(SM, Loc)))
    return;

  diag(Loc, "raw '%0' outside src/parallel/ is invisible to the race "
            "detector, model checker and cancellation layer; %1")
      << Construct << hintFor(Construct);
}

} // namespace lbmib
} // namespace tidy
} // namespace clang
