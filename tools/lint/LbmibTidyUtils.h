// Shared helpers for the lbmib-tidy checks.
//
// Every check is scoped by file path: the protocols they enforce have a
// home (src/parallel/ owns raw synchronization, the solver TUs own the
// parity swap), so "is this location allowed to do that?" is a path
// regex decided per check, overridable through the standard clang-tidy
// check options (tests point the regexes at fixture directories).
//
// The path compared is the *expansion* location's file name as the
// compiler saw it (relative or absolute depending on how the compile
// database invoked it), so the default regexes anchor on path suffixes
// like "(^|/)src/parallel/" rather than absolute prefixes.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/Support/Regex.h"

namespace clang {
namespace tidy {
namespace lbmib {

/// File name of the expansion location of `Loc` ("" when invalid).
inline llvm::StringRef locationPath(const SourceManager &SM,
                                    SourceLocation Loc) {
  if (Loc.isInvalid())
    return llvm::StringRef();
  return SM.getFilename(SM.getExpansionLoc(Loc));
}

/// True when `Path` is non-empty and matches `RE`. An empty pattern
/// never matches (llvm::Regex("") matches everything, which would turn
/// an unset allowlist into "allow all"; the checks want the opposite).
inline bool pathMatches(const std::string &Pattern, llvm::StringRef Path) {
  if (Pattern.empty() || Path.empty())
    return false;
  llvm::Regex RE(Pattern);
  return RE.match(Path);
}

/// Comma-separated option list -> vector of trimmed names.
inline llvm::SmallVector<llvm::StringRef, 16>
splitNameList(llvm::StringRef List) {
  llvm::SmallVector<llvm::StringRef, 16> Parts;
  List.split(Parts, ',', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (auto &P : Parts)
    P = P.trim();
  return Parts;
}

} // namespace lbmib
} // namespace tidy
} // namespace clang
