// lbmib-tidy: the library's own concurrency and kernel-phase protocols
// as clang-tidy checks (DESIGN.md §17).
//
// The dynamic tooling — race detector (§12), watchdog (§14), model
// checker (§15) — only sees code that routes through the instrumented
// seams in src/parallel/. These five checks make the routing itself a
// compile-time rule, so a raw std::mutex or a stale df slot constant is
// caught at review time instead of at the first hang:
//
//   lbmib-raw-sync             raw std sync outside src/parallel/
//   lbmib-missing-cancel-point unbounded loops with no cancel/heartbeat
//   lbmib-df-parity            parity-swap protocol (PR 3)
//   lbmib-lock-discipline      RAII guards; no blocking under SpinLock
//   lbmib-nondeterminism       replayability of kernels and schedulers
//
// Load with:
//   clang-tidy --load=liblbmib_tidy.so --checks='-*,lbmib-*' ...
// or via scripts/run_clang_tidy.sh --lbmib <plugin.so>, which the
// scripts/lint.sh driver arranges automatically.
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "DfParityCheck.h"
#include "LockDisciplineCheck.h"
#include "MissingCancelPointCheck.h"
#include "NondeterminismCheck.h"
#include "RawSyncCheck.h"

namespace clang {
namespace tidy {
namespace lbmib {

class LbmibTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<RawSyncCheck>("lbmib-raw-sync");
    Factories.registerCheck<MissingCancelPointCheck>(
        "lbmib-missing-cancel-point");
    Factories.registerCheck<DfParityCheck>("lbmib-df-parity");
    Factories.registerCheck<LockDisciplineCheck>("lbmib-lock-discipline");
    Factories.registerCheck<NondeterminismCheck>("lbmib-nondeterminism");
  }
};

} // namespace lbmib

// Register the module with the host clang-tidy's registry when the
// shared object is --load'ed.
static ClangTidyModuleRegistry::Add<lbmib::LbmibTidyModule>
    X("lbmib-module", "LBM-IB concurrency and kernel-phase protocol checks.");

// Pull the module in when linked statically (mirrors the upstream
// module anchor idiom; harmless for the plugin build).
volatile int LbmibTidyModuleAnchorSource = 0;

} // namespace tidy
} // namespace clang
