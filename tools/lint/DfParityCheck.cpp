#include "DfParityCheck.h"

#include "LbmibTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace lbmib {

DfParityCheck::DfParityCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SwapPathRegex(Options.get(
          "SwapPathRegex",
          "(^|/)src/(core/[a-z0-9_]+_solver\\.cpp|lbm/fluid_grid\\.|"
          "cube/cube_grid\\.)")),
      GridInternalPathRegex(Options.get(
          "GridInternalPathRegex",
          "(^|/)src/(cube/cube_grid\\.|lbm/fluid_grid\\.)")) {}

void DfParityCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "SwapPathRegex", SwapPathRegex);
  Options.store(Opts, "GridInternalPathRegex", GridInternalPathRegex);
}

void DfParityCheck::registerMatchers(ast_matchers::MatchFinder *Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName(
                            "swap_buffers", "swap_df_buffers",
                            "set_swap_parity"))
                                   .bind("swapfn")),
                        unless(isExpansionInSystemHeader()))
          .bind("swap"),
      this);
  Finder->addMatcher(
      declRefExpr(to(varDecl(hasAnyName("kDfSlot", "kDfNewSlot"))
                         .bind("slotconst")),
                  unless(isExpansionInSystemHeader()))
          .bind("slotref"),
      this);
  Finder->addMatcher(
      memberExpr(member(fieldDecl(hasAnyName("df_", "df_new_", "df_base_",
                                             "df_new_base_"))
                            .bind("rawfield")),
                 unless(isExpansionInSystemHeader()))
          .bind("rawref"),
      this);
}

void DfParityCheck::check(
    const ast_matchers::MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Swap = Result.Nodes.getNodeAs<CXXMemberCallExpr>("swap")) {
    const auto *Fn = Result.Nodes.getNodeAs<CXXMethodDecl>("swapfn");
    const SourceLocation Loc = Swap->getBeginLoc();
    if (pathMatches(SwapPathRegex, locationPath(SM, Loc)))
      return;
    diag(Loc, "'%0' flips the df/df_new parity; only the solver step "
              "loops (src/core/*_solver.cpp) may call it — everything "
              "else must read through the parity accessors")
        << Fn->getNameAsString();
    return;
  }

  if (const auto *Ref = Result.Nodes.getNodeAs<DeclRefExpr>("slotref")) {
    const auto *C = Result.Nodes.getNodeAs<VarDecl>("slotconst");
    const SourceLocation Loc = Ref->getBeginLoc();
    if (pathMatches(GridInternalPathRegex, locationPath(SM, Loc)))
      return;
    diag(Loc, "raw df slot constant '%0' names the construction-time "
              "layout and is wrong after swap_df_buffers(); use "
              "df_slot_base()/df_new_slot_base(), or "
              "CubeGrid::df_base_for(parity) for a captured parity")
        << C->getNameAsString();
    return;
  }

  if (const auto *Ref = Result.Nodes.getNodeAs<MemberExpr>("rawref")) {
    const auto *F = Result.Nodes.getNodeAs<FieldDecl>("rawfield");
    const SourceLocation Loc = Ref->getBeginLoc();
    if (pathMatches(GridInternalPathRegex, locationPath(SM, Loc)))
      return;
    diag(Loc, "direct access to df storage '%0' bypasses the parity "
              "accessors; read through df()/df_new() or the slot-base "
              "helpers")
        << F->getNameAsString();
  }
}

} // namespace lbmib
} // namespace tidy
} // namespace clang
