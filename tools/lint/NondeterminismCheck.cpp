#include "NondeterminismCheck.h"

#include "LbmibTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace lbmib {

NondeterminismCheck::NondeterminismCheck(StringRef Name,
                                         ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context) {}

void NondeterminismCheck::registerMatchers(
    ast_matchers::MatchFinder *Finder) {
  // Hidden-input functions: C RNG, wall clocks.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand", "::time",
                                              "::clock", "::random",
                                              "::drand48", "::lrand48",
                                              "::gettimeofday"))
                          .bind("fn")),
               unless(isExpansionInSystemHeader()))
          .bind("call"),
      this);
  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(cxxRecordDecl(hasAnyName(
                       "::std::chrono::system_clock",
                       "::std::chrono::high_resolution_clock"))))),
               unless(isExpansionInSystemHeader()))
          .bind("wallclock"),
      this);
  Finder->addMatcher(
      varDecl(hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
                  cxxRecordDecl(hasName("::std::random_device")))))),
              unless(isExpansionInSystemHeader()))
          .bind("rd"),
      this);
  // Pointer-keyed ordered containers: address-order iteration.
  Finder->addMatcher(
      valueDecl(hasType(hasUnqualifiedDesugaredType(recordType(
                    hasDeclaration(classTemplateSpecializationDecl(
                                       hasAnyName("::std::map", "::std::set",
                                                  "::std::multimap",
                                                  "::std::multiset"),
                                       hasTemplateArgument(
                                           0, refersToType(pointerType())))
                                       .bind("container"))))),
                unless(isExpansionInSystemHeader()))
          .bind("ptrkeyed"),
      this);
}

void NondeterminismCheck::check(
    const ast_matchers::MatchFinder::MatchResult &Result) {
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call")) {
    const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
    diag(Call->getBeginLoc(),
         "'%0' is nondeterministic across runs; kernel/scheduler code "
         "must stay replayable for the model checker and checkpoint "
         "replay — use lbmib::SplitMix64 (src/common/rng.hpp) with an "
         "explicit seed, or take the time as a parameter")
        << Fn->getNameAsString();
    return;
  }
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("wallclock")) {
    diag(Call->getBeginLoc(),
         "wall-clock read is nondeterministic across runs; use "
         "std::chrono::steady_clock for durations, or take the "
         "timestamp as a parameter so replays can pin it");
    return;
  }
  if (const auto *RD = Result.Nodes.getNodeAs<VarDecl>("rd")) {
    diag(RD->getLocation(),
         "std::random_device draws from the OS entropy pool and cannot "
         "be replayed; seed lbmib::SplitMix64 (src/common/rng.hpp) "
         "explicitly instead");
    return;
  }
  if (const auto *D = Result.Nodes.getNodeAs<ValueDecl>("ptrkeyed")) {
    const auto *C =
        Result.Nodes.getNodeAs<ClassTemplateSpecializationDecl>("container");
    diag(D->getLocation(),
         "pointer-keyed '%0' iterates in address order, which differs "
         "run to run and breaks model-checker and checkpoint replay; "
         "key by a stable id instead")
        << C->getQualifiedNameAsString();
  }
}

} // namespace lbmib
} // namespace tidy
} // namespace clang
