// lbmib-df-parity: the PR-3 O(1) buffer-swap protocol. Kernel 9 of the
// fused pipeline retargets df/df_new instead of copying 19 planes, so
// *which* storage "df" means flips every step. Three things therefore
// belong only to specific TUs:
//   * swap_buffers / swap_df_buffers / set_swap_parity — the parity
//     pivots; only the solver step loops may call them (a swap anywhere
//     else silently shears the fields mid-step),
//   * the raw slot constants kDfSlot / kDfNewSlot — indexing with them
//     reads the construction-time layout, wrong after any odd number of
//     swaps; use df_slot_base()/df_new_slot_base() (or
//     CubeGrid::df_base_for when a captured parity is threaded through,
//     as the overlapped dataflow solver does),
//   * the raw df_/df_new_ buffers themselves.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace lbmib {

class DfParityCheck : public ClangTidyCheck {
public:
  DfParityCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  /// TUs allowed to flip parity: the six solver step loops plus the
  /// grid classes that own the mechanism.
  const std::string SwapPathRegex;
  /// Files allowed to see the raw slot layout: the grid internals.
  const std::string GridInternalPathRegex;
};

} // namespace lbmib
} // namespace tidy
} // namespace clang
