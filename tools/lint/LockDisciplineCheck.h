// lbmib-lock-discipline: two rules about holding locks.
//
//   1. No manual lock()/unlock() pairs (CP.20): an exception or early
//      return between them leaks the lock, and clang's thread-safety
//      analysis (which gates the CI clang job) only reasons cleanly
//      about scoped capabilities. Use SpinLockGuard / MutexLock /
//      std::lock_guard. Guard classes themselves (and the primitive
//      wrappers in src/parallel/) are exempt.
//   2. No blocking operation (barrier arrive_and_wait, Channel recv,
//      Mutex wait) while a SpinLockGuard is live in an enclosing scope:
//      contenders spin — burning a core and deferring their cancel
//      polls — while the holder sleeps, and under the model checker the
//      schedule shows up as a (correct!) deadlock report.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace lbmib {

class LockDisciplineCheck : public ClangTidyCheck {
public:
  LockDisciplineCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  /// Paths where manual lock()/unlock() is the implementation (the
  /// guards and primitives themselves).
  const std::string AllowedPathRegex;
  /// Enclosing classes whose job is to call lock()/unlock().
  const std::string GuardClassRegex;
};

} // namespace lbmib
} // namespace tidy
} // namespace clang
