#include "LockDisciplineCheck.h"

#include "LbmibTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace lbmib {

LockDisciplineCheck::LockDisciplineCheck(StringRef Name,
                                         ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedPathRegex(
          Options.get("AllowedPathRegex", "(^|/)src/parallel/")),
      GuardClassRegex(
          Options.get("GuardClassRegex", ".*([Gg]uard|[Ll]ock)$")) {}

void LockDisciplineCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedPathRegex", AllowedPathRegex);
  Options.store(Opts, "GuardClassRegex", GuardClassRegex);
}

void LockDisciplineCheck::registerMatchers(
    ast_matchers::MatchFinder *Finder) {
  const auto LockableRecord = cxxRecordDecl(hasAnyName(
      "SpinLock", "Mutex", "::std::mutex", "::std::recursive_mutex",
      "::std::timed_mutex", "::std::shared_mutex"));
  const auto OnLockable =
      on(expr(anyOf(hasType(hasUnqualifiedDesugaredType(
                        recordType(hasDeclaration(LockableRecord)))),
                    hasType(pointsTo(LockableRecord)))));

  // Rule 1: manual lock()/unlock() outside a guard class.
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("lock", "unlock")).bind("method")),
          OnLockable,
          unless(hasAncestor(cxxRecordDecl(matchesName(GuardClassRegex)))),
          unless(isExpansionInSystemHeader()))
          .bind("manual"),
      this);

  // Rule 2: a blocking call with a live SpinLockGuard in an enclosing
  // compound statement. Ordering (guard declared *before* the call) is
  // verified in check(); the matcher over-approximates.
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("arrive_and_wait", "recv",
                                          "recv_for", "wait", "wait_for"))
                     .bind("blockfn")),
          hasAncestor(compoundStmt(has(declStmt(hasSingleDecl(
              varDecl(hasType(cxxRecordDecl(hasName("SpinLockGuard"))))
                  .bind("spinguard")))))),
          unless(isExpansionInSystemHeader()))
          .bind("blocking"),
      this);
}

void LockDisciplineCheck::check(
    const ast_matchers::MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Manual =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("manual")) {
    const SourceLocation Loc = Manual->getBeginLoc();
    if (pathMatches(AllowedPathRegex, locationPath(SM, Loc)))
      return;
    const auto *M = Result.Nodes.getNodeAs<CXXMethodDecl>("method");
    diag(Loc, "manual '%0()' call; use a RAII guard (SpinLockGuard, "
              "MutexLock, std::lock_guard) so the lock is released on "
              "every path, including exceptions and cancellation "
              "unwinds")
        << M->getNameAsString();
    return;
  }

  if (const auto *Blocking =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("blocking")) {
    const auto *Guard = Result.Nodes.getNodeAs<VarDecl>("spinguard");
    if (Guard == nullptr)
      return;
    // The guard must be declared before the blocking call (same scope
    // chain is implied by the ancestor matcher).
    if (!SM.isBeforeInTranslationUnit(Guard->getLocation(),
                                      Blocking->getBeginLoc()))
      return;
    const auto *Fn = Result.Nodes.getNodeAs<CXXMethodDecl>("blockfn");
    diag(Blocking->getBeginLoc(),
         "blocking call '%0' while a SpinLock is held (guard '%1' is "
         "live): spin-waiters burn a core and defer their cancel polls; "
         "scope the guard so it is released before blocking")
        << Fn->getNameAsString() << Guard->getNameAsString();
  }
}

} // namespace lbmib
} // namespace tidy
} // namespace clang
